"""Surgical tests for Algorithm 4's commit-level machinery (line 43).

A process that has committed at level ``L`` must ignore commit
certificates from levels ``< L`` — otherwise a Byzantine leader could
rewind the lock and finalize a superseded value.  Staging the rewind
takes a conspiracy, because honest processes stop *voting* once they
hold any commitment (so later Byzantine leaders cannot mint fresh
certificates):

* phase 1 — Byzantine leader p1 proposes ``old``, collects the honest
  votes, forms the level-1 certificate... and **withholds** it (honest
  processes voted, but voting alone does not commit);
* phase 2 — Byzantine leader p2 proposes ``new``; honest processes are
  still uncommitted, so they vote; p2 broadcasts the level-2
  certificate and everyone commits to ``new`` at level 2;
* phase 3 — Byzantine leader p3 replays p1's withheld *level-1*
  certificate for ``old``.

Line 43 (``level >= commit_level``) must reject the replay; the
decision must be ``new``.
"""

from dataclasses import dataclass, field

from repro.adversary.protocol_attacks import (
    WBA_PHASE_ROUNDS,
    WeakBaCommitOnlyLeader,
    weak_ba_phase_of,
)
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import (
    WbaCommitCert,
    WbaPropose,
    WbaVote,
    commit_label,
    run_weak_ba,
)
from repro.crypto.certificates import CertificateCollector
from repro.runtime.byzantine import ByzantineApi
from repro.runtime.scheduler import Simulation

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))
VALIDITY_OBJ = ExternalValidity(lambda v: isinstance(v, str))


@dataclass
class StaleCommitConspiracy:
    """One object registered as the behavior of p1 AND p3 (Byzantine
    coalitions coordinate): p1 builds-and-withholds the level-1 cert,
    p3 replays it in phase 3."""

    stale_value: object = "old"
    session: str = "wba"
    _stale_cert: object = field(default=None, init=False)

    def step(self, api: ByzantineApi) -> None:
        if api.pid == weak_ba_phase_of(api.pid, api.config.n) and api.pid == 1:
            self._step_withholder(api)
        elif api.pid == 3:
            self._step_replayer(api)

    def _step_withholder(self, api: ByzantineApi) -> None:
        base = 0  # phase 1
        quorum = api.config.commit_quorum
        if api.now == base:
            api.broadcast(
                WbaPropose(session=self.session, phase=1, value=self.stale_value)
            )
        elif api.now == base + 2 and self._stale_cert is None:
            collector = CertificateCollector(
                api.suite,
                commit_label(self.session),
                quorum,
                ("commit", self.stale_value, 1),
            )
            for envelope in api.inbox:
                payload = envelope.payload
                if isinstance(payload, WbaVote) and payload.phase == 1:
                    collector.add(payload.partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        commit_label(self.session),
                        quorum,
                        ("commit", self.stale_value, 1),
                    )
                )
            if collector.complete:
                self._stale_cert = collector.certificate()
                api.emit("stale_cert_built")
            # ... and deliberately broadcast nothing.

    def _step_replayer(self, api: ByzantineApi) -> None:
        phase = 3
        replay_tick = WBA_PHASE_ROUNDS * (phase - 1) + 2
        if api.now == replay_tick and self._stale_cert is not None:
            api.broadcast(
                WbaCommitCert(
                    session=self.session,
                    phase=phase,
                    value=self.stale_value,
                    proof=self._stale_cert,
                    level=1,  # the proof pins the stale level
                )
            )
            api.emit("replayed_commit", level=1)


class TestCommitLevelMonotonicity:
    def test_stale_commit_replay_is_rejected(self):
        # n=13 so the ⌈(n+t+1)/2⌉ = 10 quorum stays reachable by the
        # 10 correct processes despite the three Byzantine leaders.
        config = SystemConfig.with_optimal_resilience(13)
        conspiracy = StaleCommitConspiracy()
        simulation = Simulation(config, seed=0)
        simulation.add_byzantine(1, conspiracy)
        simulation.add_byzantine(2, WeakBaCommitOnlyLeader(value="new"))
        simulation.add_byzantine(3, conspiracy)
        from repro.core.weak_ba import weak_ba_protocol

        for pid in config.processes:
            if pid in (1, 2, 3):
                continue
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "own", VALIDITY_OBJ)
            )
        result = simulation.run()
        assert result.trace.any("stale_cert_built")
        assert result.trace.any("replayed_commit")
        # No correct process answered the phase-3 replay with a decide
        # share (their commit_level is already 2 > 1).
        phase3_decides = [
            r
            for r in result.ledger.records
            if r.payload_type == "WbaDecideShare"
            and r.sender_correct
            and WBA_PHASE_ROUNDS * 2 <= r.tick < WBA_PHASE_ROUNDS * 3
        ]
        assert not phase3_decides
        # The level-2 commitment is what finalizes.
        assert result.unanimous_decision() == "new"

    def test_equal_level_relay_is_accepted(self, config7):
        """Line 43 is '>=', not '>': relaying the *current*-level
        commitment is how honest leaders finish someone else's phase."""
        byzantine = {1: WeakBaCommitOnlyLeader(value="locked")}
        inputs = {p: "own" for p in config7.processes if p != 1}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "locked"
