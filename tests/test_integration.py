"""Integration tests: full-stack composition, adaptive corruption,
layer attribution (Figure 1), and cross-protocol consistency."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.strategies import CrashStrategy, apply_strategy
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.runtime.scheduler import Simulation


class TestComposition:
    """Figure 1: BB sits on weak BA, which sits on the fallback; the
    ledger's scope attribution must reflect the actual nesting."""

    def test_bb_without_fallback_has_two_layers(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        scopes = set(result.ledger.words_by_scope())
        assert scopes == {"bb", "bb/weak_ba"}

    def test_bb_with_fallback_has_three_layers(self, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="v", byzantine=byzantine
        )
        scopes = set(result.ledger.words_by_scope())
        assert "bb/weak_ba/fallback" in scopes

    def test_fallback_dominates_words_when_used(self, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="v", byzantine=byzantine
        )
        by_scope = result.ledger.words_by_scope()
        fallback_words = sum(
            words for scope, words in by_scope.items() if "fallback" in scope
        )
        assert fallback_words > result.correct_words / 2

    def test_strong_ba_fallback_scope(self, config7):
        byzantine = {0: SilentBehavior()}
        result = run_strong_ba(
            config7,
            {p: 1 for p in config7.processes if p != 0},
            byzantine=byzantine,
        )
        scopes = set(result.ledger.words_by_scope())
        assert "strong_ba" in scopes
        assert "strong_ba/fallback" in scopes


class TestAdaptiveCorruption:
    """The paper's adversary corrupts processes *during* the run."""

    def test_bb_survives_mid_run_crashes(self, config7):
        plan = CrashStrategy(
            first_tick=2, last_tick=10, avoid=frozenset({0})
        ).plan(config7, f=2, seed=3)
        simulation = Simulation(config7, seed=3)
        apply_strategy(
            simulation,
            plan,
            lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
        )
        result = simulation.run()
        assert result.unanimous_decision() == "v"

    def test_sender_crash_after_dissemination_still_decides_value(
        self, config7
    ):
        """The sender crashes right after round 1: every correct process
        already holds ⟨v⟩_sender, so the value must still win."""
        simulation = Simulation(config7, seed=0)
        for pid in config7.processes:
            simulation.add_process(
                pid, lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
            )
        simulation.schedule_corruption(1, 0, SilentBehavior())
        result = simulation.run()
        assert result.unanimous_decision() == "v"

    @pytest.mark.parametrize("crash_tick", [0, 1, 3, 7, 15])
    def test_weak_ba_with_crash_at_any_point(self, crash_tick, config7):
        validity = ExternalValidity(lambda v: isinstance(v, str))
        simulation = Simulation(config7, seed=1)
        from repro.core.weak_ba import weak_ba_protocol

        for pid in config7.processes:
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "v", validity)
            )
        simulation.schedule_corruption(crash_tick, 2, SilentBehavior())
        result = simulation.run()
        assert result.unanimous_decision() == "v"


class TestCrossProtocolConsistency:
    def test_bb_and_dolev_strong_agree_on_correct_sender(self, config7):
        from repro.fallback.dolev_strong import run_dolev_strong

        adaptive = run_byzantine_broadcast(config7, sender=0, value="same")
        classic = run_dolev_strong(config7, sender=0, value="same")
        assert (
            adaptive.unanimous_decision()
            == classic.unanimous_decision()
            == "same"
        )

    def test_adaptive_bb_cheaper_than_dolev_strong(self, config7):
        """The paper's point: same guarantees, far fewer words."""
        from repro.fallback.dolev_strong import run_dolev_strong

        adaptive = run_byzantine_broadcast(config7, sender=0, value="v")
        classic = run_dolev_strong(config7, sender=0, value="v")
        assert adaptive.correct_words < classic.correct_words

    def test_weak_ba_as_strong_ba_via_signed_inputs(self, config7):
        """Section 3's observation: with the signed-inputs predicate,
        unique validity collapses to strong unanimity on the underlying
        values.  Simulate by having every process propose a t+1-signed
        input certificate for the same value."""
        from repro.core.validity import INPUT_LABEL, SignedInputsValidity

        simulation = Simulation(config7, seed=0)
        suite = simulation.suite
        partials = [
            suite.partial_for_certificate(
                pid, INPUT_LABEL, config7.small_quorum, ("input", "agreed")
            )
            for pid in range(config7.small_quorum)
        ]
        certificate = suite.combine_certificate(
            INPUT_LABEL, config7.small_quorum, ("input", "agreed"), partials
        )
        validity = SignedInputsValidity(suite, config7)
        from repro.core.weak_ba import weak_ba_protocol

        for pid in config7.processes:
            simulation.add_process(
                pid,
                lambda ctx: weak_ba_protocol(ctx, certificate, validity),
            )
        result = simulation.run()
        decision = result.unanimous_decision()
        assert decision == certificate
        assert decision.payload == ("input", "agreed")


class TestScaleSweep:
    @pytest.mark.parametrize("n", [3, 5, 9, 15, 21])
    def test_bb_correct_across_sizes(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_byzantine_broadcast(config, sender=0, value=("v", n))
        assert result.unanimous_decision() == ("v", n)

    def test_bb_with_half_t_failures_at_scale(self):
        config = SystemConfig.with_optimal_resilience(15)
        byzantine = {p: SilentBehavior() for p in (1, 4, 8)}
        result = run_byzantine_broadcast(
            config, sender=0, value="v", byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
