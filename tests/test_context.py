"""Unit tests for ProcessContext (scopes, rng, sleeping, sending)."""

from repro.runtime.scheduler import Simulation


class TestScopes:
    def test_nested_scope_paths(self, config5):
        paths = []

        def protocol(ctx):
            paths.append(ctx.scope_path)
            with ctx.scope("outer"):
                paths.append(ctx.scope_path)
                with ctx.scope("inner"):
                    paths.append(ctx.scope_path)
                paths.append(ctx.scope_path)
            paths.append(ctx.scope_path)
            return None
            yield  # pragma: no cover - makes this a generator

        simulation = Simulation(config5)
        simulation.add_process(0, protocol)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        simulation.run()
        assert paths == ["top", "outer", "outer/inner", "outer", "top"]

    def test_scope_restored_after_exception(self, config5):
        def protocol(ctx):
            try:
                with ctx.scope("broken"):
                    raise ValueError("inside")
            except ValueError:
                pass
            assert ctx.scope_path == "top"
            return "done"
            yield  # pragma: no cover

        simulation = Simulation(config5)
        simulation.add_process(0, protocol)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        result = simulation.run()
        assert result.decisions[0] == "done"

    def test_sends_attributed_to_active_scope(self, config5):
        def protocol(ctx):
            ctx.send(1, "outside")
            with ctx.scope("layer"):
                ctx.send(1, "inside")
            yield
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, protocol)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        result = simulation.run()
        scopes = {r.scope for r in result.ledger.records}
        assert scopes == {"top", "layer"}


class TestRngAndClock:
    def test_rng_per_process_and_seeded(self, config5):
        draws = {}

        def protocol(ctx):
            draws[ctx.pid] = ctx.rng.random()
            return None
            yield  # pragma: no cover

        simulation = Simulation(config5, seed=9)
        for pid in config5.processes:
            simulation.add_process(pid, protocol)
        simulation.run()
        assert len(set(draws.values())) == config5.n  # all different

        rerun = {}

        def protocol2(ctx):
            rerun[ctx.pid] = ctx.rng.random()
            return None
            yield  # pragma: no cover

        simulation = Simulation(config5, seed=9)
        for pid in config5.processes:
            simulation.add_process(pid, protocol2)
        simulation.run()
        assert rerun == draws  # same seed, same draws

    def test_now_advances_with_yields(self, config5):
        seen = []

        def protocol(ctx):
            seen.append(ctx.now)
            yield
            seen.append(ctx.now)
            yield
            seen.append(ctx.now)
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, protocol)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        simulation.run()
        assert seen == [0, 1, 2]

    def test_sleep_collects_across_ticks(self, config5):
        collected = {}

        def sender(ctx):
            ctx.send(0, "one")
            yield
            ctx.send(0, "two")
            yield
            return None

        def receiver(ctx):
            envelopes = yield from ctx.sleep(3)
            collected["payloads"] = [e.payload for e in envelopes]
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, receiver)
        simulation.add_process(1, sender)
        for pid in (2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        simulation.run()
        assert collected["payloads"] == ["one", "two"]
