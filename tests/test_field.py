"""Unit tests for prime-field arithmetic and Lagrange interpolation."""

import pytest

from repro.crypto import field
from repro.errors import ThresholdError


class TestBasicOps:
    def test_prime_is_prime_small_witnesses(self):
        # Fermat tests with a few bases — PRIME is the secp256k1 field prime.
        for base in (2, 3, 5, 7, 11):
            assert pow(base, field.PRIME - 1, field.PRIME) == 1

    def test_add_sub_roundtrip(self):
        a, b = 12345, field.PRIME - 7
        assert field.sub(field.add(a, b), b) == a % field.PRIME

    def test_mul_inv_roundtrip(self):
        for a in (1, 2, 17, field.PRIME - 1, 123456789):
            assert field.mul(a, field.inv(a)) == 1

    def test_inv_of_zero_rejected(self):
        with pytest.raises(ThresholdError):
            field.inv(0)
        with pytest.raises(ThresholdError):
            field.inv(field.PRIME)

    def test_normalize(self):
        assert field.normalize(field.PRIME + 5) == 5
        assert field.normalize(-1) == field.PRIME - 1


class TestPolynomial:
    def test_constant(self):
        poly = field.Polynomial((42,))
        assert poly.evaluate(0) == 42
        assert poly.evaluate(99999) == 42

    def test_linear(self):
        poly = field.Polynomial((3, 2))  # 3 + 2x
        assert poly.evaluate(0) == 3
        assert poly.evaluate(10) == 23

    def test_degree(self):
        assert field.Polynomial((1, 2, 3)).degree == 2

    def test_coefficients_reduced(self):
        poly = field.Polynomial((field.PRIME + 1,))
        assert poly.coefficients == (1,)


class TestLagrange:
    def test_recovers_secret_from_any_k_shares(self):
        poly = field.Polynomial((777, 13, 99))  # degree 2, secret 777
        shares = [(x, poly.evaluate(x)) for x in range(1, 8)]
        for subset in [shares[:3], shares[2:5], [shares[0], shares[3], shares[6]]]:
            assert field.interpolate_at_zero(subset) == 777

    def test_coefficients_sum_correctly(self):
        xs = [1, 2, 3, 4]
        coefficients = field.lagrange_coefficients_at_zero(xs)
        # For the constant polynomial f == 1: sum of coefficients is 1.
        assert sum(coefficients) % field.PRIME == 1

    def test_duplicate_points_rejected(self):
        with pytest.raises(ThresholdError):
            field.lagrange_coefficients_at_zero([1, 1, 2])

    def test_zero_point_rejected(self):
        with pytest.raises(ThresholdError):
            field.lagrange_coefficients_at_zero([0, 1, 2])

    def test_too_few_shares_give_wrong_secret(self):
        """Information-theoretic security: k-1 shares interpolate to a
        value unrelated to the secret."""
        poly = field.Polynomial((555, 7, 21))  # degree 2, needs 3 points
        shares = [(x, poly.evaluate(x)) for x in (1, 2)]
        assert field.interpolate_at_zero(shares) != 555
