"""Tests for the quadratic fallback BA (agreement, validity, complexity)."""

import pytest

from repro.adversary.behaviors import EchoBehavior, GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.fallback.recursive_ba import ba_rounds, run_fallback_ba


class TestStrongUnanimity:
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9, 11])
    def test_unanimous_failure_free(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_fallback_ba(config, {p: "V" for p in config.processes})
        assert result.unanimous_decision() == "V"

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_unanimous_with_silent_failures(self, f, config7):
        byzantine = {p: SilentBehavior() for p in range(f)}
        inputs = {p: "V" for p in config7.processes if p not in byzantine}
        result = run_fallback_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "V"

    def test_unanimous_under_garbage(self, config7):
        byzantine = {1: GarbageSpammer(), 5: EchoBehavior()}
        inputs = {p: "V" for p in config7.processes if p not in byzantine}
        result = run_fallback_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "V"


class TestAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_inputs_agree(self, seed, config7):
        inputs = {p: f"v{(p + seed) % 3}" for p in config7.processes}
        result = run_fallback_ba(config7, inputs, seed=seed)
        decision = result.unanimous_decision()
        assert decision in set(inputs.values())

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_inputs_with_max_failures(self, seed, config7):
        byzantine = {p: SilentBehavior() for p in (0, 2, 6)}
        inputs = {
            p: f"v{p % 2}" for p in config7.processes if p not in byzantine
        }
        result = run_fallback_ba(config7, inputs, byzantine=byzantine, seed=seed)
        result.unanimous_decision()

    def test_binary_inputs_decide_proposed_value(self, config5):
        inputs = {0: 1, 1: 0, 2: 1, 3: 0, 4: 1}
        result = run_fallback_ba(config5, inputs)
        assert result.unanimous_decision() in (0, 1)


class TestRoundSchedule:
    def test_base_cases(self):
        assert ba_rounds(1) == 0
        assert ba_rounds(2) == 1

    def test_recursion_formula(self):
        # ba_rounds(m) = 2*GC + ba(ceil(m/2)) + ba(floor(m/2)) + 2
        for m in (3, 5, 8, 13, 21):
            half_a = (m + 1) // 2
            half_b = m - half_a
            assert ba_rounds(m) == 10 + ba_rounds(half_a) + ba_rounds(half_b)

    def test_rounds_linear_in_n(self):
        assert ba_rounds(64) < 30 * 64

    def test_simulated_ticks_match_schedule(self, config7):
        result = run_fallback_ba(config7, {p: "V" for p in config7.processes})
        assert result.ticks == ba_rounds(7) + 1


class TestComplexity:
    def test_words_quadratic_in_n(self):
        words = {}
        for n in (5, 9, 17):
            config = SystemConfig.with_optimal_resilience(n)
            result = run_fallback_ba(config, {p: "V" for p in config.processes})
            words[n] = result.correct_words
        ratio_small = words[5] / 5**2
        ratio_large = words[17] / 17**2
        # words/n^2 stays within a small constant band.
        assert ratio_large < 3 * ratio_small
        # ... while words/n clearly grows (not linear).
        assert words[17] / 17 > 2 * words[5] / 5

    def test_fallback_round_ticks_two_works(self, config7):
        """The delta' = 2*delta configuration (as invoked by weak BA)."""
        from repro.fallback.recursive_ba import fallback_ba
        from repro.runtime.scheduler import Simulation

        simulation = Simulation(config7, seed=0)
        for pid in config7.processes:
            simulation.add_process(
                pid, lambda ctx: fallback_ba(ctx, "V", round_ticks=2)
            )
        result = simulation.run()
        assert result.unanimous_decision() == "V"

    def test_skewed_starts_still_agree(self, config7):
        """Members entering up to one tick apart (Lemma 18's scenario)."""
        from repro.fallback.recursive_ba import fallback_ba
        from repro.runtime.scheduler import Simulation

        simulation = Simulation(config7, seed=0)

        def delayed(ctx):
            def protocol(ctx):
                if ctx.pid % 2 == 0:
                    yield  # enter one tick late
                result = yield from fallback_ba(
                    ctx, f"v{ctx.pid % 2}", round_ticks=2
                )
                return result

            return protocol(ctx)

        for pid in config7.processes:
            simulation.add_process(pid, delayed)
        result = simulation.run()
        result.unanimous_decision()
