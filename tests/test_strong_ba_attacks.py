"""Adversarial leader tests for Algorithm 5 (Lemma 26's content)."""

import pytest

from repro.adversary.protocol_attacks import StrongBaEquivocatingLeader
from repro.core.strong_ba import run_strong_ba, strong_ba_protocol
from repro.runtime.scheduler import Simulation


def run_with_equivocating_leader(config, inputs, seed=0):
    simulation = Simulation(config, seed=seed)
    simulation.add_byzantine(0, StrongBaEquivocatingLeader())
    for pid in config.processes:
        if pid == 0:
            continue
        simulation.add_process(
            pid, lambda ctx, v=inputs[pid]: strong_ba_protocol(ctx, v)
        )
    return simulation.run()


class TestEquivocatingLeader:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_split_and_agreement(self, seed, config7):
        """Mixed inputs let the Byzantine leader build both propose
        certificates; it deals them to disjoint halves.  The n-of-n
        decide quorum (Lemma 26) blocks any fast decision, and the
        fallback restores agreement."""
        inputs = {p: p % 2 for p in config7.processes}
        result = run_with_equivocating_leader(config7, inputs, seed)
        assert result.trace.any("sba_leader_equivocated")
        # Nobody decided on the fast path...
        assert not result.trace.any("sba_decided_fast")
        # ...everyone fell back and agreed on a binary value.
        assert result.fallback_was_used()
        assert result.unanimous_decision() in (0, 1)

    def test_unanimous_inputs_defuse_the_attack(self, config7):
        """With unanimous correct inputs the leader cannot even build
        the second propose certificate (the other value has at most t
        backers), so equivocation is impossible and strong unanimity
        carries through the fallback."""
        inputs = {p: 1 for p in config7.processes}
        result = run_with_equivocating_leader(config7, inputs)
        assert not result.trace.any("sba_leader_equivocated")
        assert result.unanimous_decision() == 1


class TestDecideQuorumUniqueness:
    def test_any_failure_blocks_the_n_of_n_certificate(self, config7):
        """The decide certificate needs every process, so a single
        silent process already forces the fallback (measured in
        bench_table1_strong_linear as the f=1 quadratic jump)."""
        from repro.adversary.behaviors import SilentBehavior

        result = run_strong_ba(
            config7,
            {p: 1 for p in config7.processes if p != 6},
            byzantine={6: SilentBehavior()},
        )
        assert not result.trace.any("sba_decided_fast")
        assert result.fallback_was_used()
        assert result.unanimous_decision() == 1
