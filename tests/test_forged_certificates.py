"""End-to-end forgery rejection: adversaries inject *plausible-looking*
certificates everywhere the protocols accept one, and every forgery
must bounce off the strict verification layer.

The common forgery shapes:

* **downgrade** — a real certificate from a lower-threshold scheme of
  the same label (defeated by pinning ``k`` in ``verify_certificate``);
* **rebind** — a real signature stapled to a different payload
  (defeated by the signed ``(label, payload)`` binding);
* **fabrication** — made-up signature values (defeated by the scheme).
"""

from dataclasses import dataclass

from repro.adversary.behaviors import FallbackForcer
from repro.core.byzantine_broadcast import BbPhaseResult, run_byzantine_broadcast
from repro.core.validity import IDK_LABEL
from repro.core.weak_ba import (
    WbaFallbackCert,
    WbaHelp,
    fallback_label,
    run_weak_ba,
)
from repro.core.validity import ExternalValidity
from repro.crypto.certificates import QuorumCertificate
from repro.crypto.threshold import ThresholdSignature
from repro.runtime.byzantine import ByzantineApi

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


@dataclass
class DowngradedIdkForger:
    """Builds a *valid* idk certificate under a k=1 scheme (just its own
    share) and pushes it as a BB phase result: the BB_valid check must
    reject the downgrade."""

    session: str = "bb"

    def step(self, api: ByzantineApi) -> None:
        if api.now != 2:
            return
        statement = f"idk:{self.session}"
        partial = api.suite.partial_for_certificate(
            api.pid, IDK_LABEL, 1, statement
        )
        certificate = api.suite.combine_certificate(
            IDK_LABEL, 1, statement, [partial]
        )
        for phase in (1, 2, 3):
            api.broadcast(
                BbPhaseResult(
                    session=self.session, phase=phase, value=certificate
                )
            )


@dataclass
class FabricatedHelpForger:
    """Answers every help request with a fabricated finalize proof."""

    session: str = "wba"

    def step(self, api: ByzantineApi) -> None:
        fake_signature = ThresholdSignature(
            scheme_id=f"wba-fin:{self.session}|k={api.config.commit_quorum}",
            digest=12345,
            value=67890,
            signers=frozenset(range(api.config.commit_quorum)),
        )
        fake_proof = QuorumCertificate(
            label=f"wba-fin:{self.session}",
            payload=("finalized", "forged!", 1),
            signature=fake_signature,
        )
        api.broadcast(
            WbaHelp(
                session=self.session,
                value="forged!",
                proof=fake_proof,
                proof_phase=1,
            )
        )


@dataclass
class RebindingFallbackForger:
    """Takes a *real* fallback certificate's signature and rebinds it to
    a different statement; also fabricates one outright."""

    session: str = "wba"

    def step(self, api: ByzantineApi) -> None:
        fake_signature = ThresholdSignature(
            scheme_id=f"wba-fb:{self.session}|k={api.config.small_quorum}",
            digest=1,
            value=2,
            signers=frozenset(range(api.config.small_quorum)),
        )
        api.broadcast(
            WbaFallbackCert(
                session=self.session,
                certificate=QuorumCertificate(
                    label=fallback_label(self.session),
                    payload="start-fallback",
                    signature=fake_signature,
                ),
                value="forged!",
                proof=None,
                proof_phase=0,
            )
        )


class TestForgeries:
    def test_downgraded_idk_certificate_rejected(self, config7):
        """With a *correct* sender, a downgrade-forged idk certificate
        would let the adversary beat Lemma 10 and create a second valid
        value.  It must not: the sender's value wins unanimously."""
        result = run_byzantine_broadcast(
            config7,
            sender=0,
            value="real",
            byzantine={3: DowngradedIdkForger()},
        )
        assert result.unanimous_decision() == "real"

    def test_fabricated_help_proof_rejected(self, config7):
        """A forged finalize proof in a help answer must not install a
        decision: everyone still decides the real value."""
        byzantine = {2: FabricatedHelpForger()}
        inputs = {p: "v" for p in config7.processes if p != 2}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"

    def test_fabricated_fallback_certificate_rejected(self, config7):
        """A fabricated fallback certificate must not drag decided
        processes into the quadratic fallback."""
        byzantine = {4: RebindingFallbackForger()}
        inputs = {p: "v" for p in config7.processes if p != 4}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()

    def test_help_req_flood_cannot_force_fallback(self, config7):
        """FallbackForcer floods signed help requests from its own key
        every tick — but a fallback certificate needs t+1 *distinct*
        signers, and with everyone decided no correct process ever
        contributes.  The adaptive path must survive."""

        def make_help_req(api):
            from repro.core.weak_ba import FALLBACK_STATEMENT, WbaHelpReq

            return WbaHelpReq(
                session="wba",
                partial=api.suite.partial_for_certificate(
                    api.pid,
                    fallback_label("wba"),
                    api.config.small_quorum,
                    FALLBACK_STATEMENT,
                ),
            )

        byzantine = {5: FallbackForcer(payload_factory=make_help_req)}
        inputs = {p: "v" for p in config7.processes if p != 5}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()
        # Decided processes answered the (valid-looking) requests — the
        # O(n * requests) help cost the paper budgets for — but nothing
        # more.
        help_words = result.ledger.words_by_payload_type().get("WbaHelp", 0)
        assert help_words > 0
