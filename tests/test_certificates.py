"""Unit tests for CryptoSuite, quorum certificates, and collectors."""

import pytest

from repro.crypto.certificates import (
    CertificateCollector,
    CryptoSuite,
    QuorumCertificate,
)
from repro.errors import ThresholdError


def make_cert(suite, label, k, payload, signers):
    partials = [
        suite.partial_for_certificate(pid, label, k, payload) for pid in signers
    ]
    return suite.combine_certificate(label, k, payload, partials)


class TestSuiteSchemes:
    def test_scheme_is_cached(self, config7, suite7):
        assert suite7.scheme("x", 3) is suite7.scheme("x", 3)

    def test_distinct_labels_distinct_schemes(self, suite7):
        a = suite7.scheme("a", 3)
        b = suite7.scheme("b", 3)
        assert a.scheme_id != b.scheme_id

    def test_scheme_by_id_roundtrip(self, suite7):
        scheme = suite7.scheme("label", 4)
        assert suite7.scheme_by_id(scheme.scheme_id) is scheme

    def test_scheme_by_id_parses_unseen(self, config7, suite7):
        other = CryptoSuite(config7, seed=42)
        scheme = other.scheme("fresh", 2)
        resolved = suite7.scheme_by_id(scheme.scheme_id)
        assert resolved is not None
        assert resolved.k == 2

    def test_scheme_by_id_with_members(self, suite7):
        scheme = suite7.scheme("com", 2, frozenset({1, 2, 4}))
        resolved = suite7.scheme_by_id(scheme.scheme_id)
        assert resolved.members == frozenset({1, 2, 4})

    def test_scheme_by_id_garbage(self, suite7):
        assert suite7.scheme_by_id("nonsense") is None
        assert suite7.scheme_by_id("a|k=999") is None
        assert suite7.scheme_by_id("a|k=2|m=1,zzz") is None

    def test_same_seed_same_schemes_across_instances(self, config7):
        a = CryptoSuite(config7, seed=7)
        b = CryptoSuite(config7, seed=7)
        cert = make_cert(a, "l", 3, "payload", range(3))
        assert cert.verify(b)

    def test_different_seed_rejects(self, config7):
        a = CryptoSuite(config7, seed=7)
        b = CryptoSuite(config7, seed=8)
        cert = make_cert(a, "l", 3, "payload", range(3))
        assert not cert.verify(b)


class TestCertificates:
    def test_roundtrip(self, config7, suite7):
        cert = make_cert(suite7, "commit", config7.commit_quorum, ("v", 1),
                         range(config7.commit_quorum))
        assert cert.verify(suite7)
        assert suite7.verify_certificate(cert, "commit", config7.commit_quorum)
        assert cert.words() == 1
        assert cert.signatures() == config7.commit_quorum

    def test_strict_verification_pins_quorum_size(self, suite7):
        """A certificate from a k=1 scheme must not pass as a k=4 one —
        the downgrade-forgery guard."""
        low = make_cert(suite7, "commit", 1, "v", [0])
        assert low.verify(suite7)  # valid under its own scheme
        assert not suite7.verify_certificate(low, "commit", 4)

    def test_strict_verification_pins_label(self, suite7):
        cert = make_cert(suite7, "idk", 4, "v", range(4))
        assert not suite7.verify_certificate(cert, "commit", 4)

    def test_strict_verification_pins_members(self, suite7):
        committee = frozenset({0, 1, 2})
        partials = [
            suite7.partial_for_certificate(pid, "c", 2, "v", committee)
            for pid in (0, 1)
        ]
        cert = suite7.combine_certificate("c", 2, "v", partials, committee)
        assert suite7.verify_certificate(cert, "c", 2, committee)
        assert not suite7.verify_certificate(cert, "c", 2, frozenset({3, 4, 5}))
        assert not suite7.verify_certificate(cert, "c", 2)

    def test_payload_substitution_rejected(self, suite7):
        cert = make_cert(suite7, "l", 3, "real", range(3))
        fake = QuorumCertificate(label="l", payload="fake", signature=cert.signature)
        assert not fake.verify(suite7)

    def test_non_certificate_rejected(self, suite7):
        assert not suite7.verify_certificate("garbage", "l", 3)
        assert not suite7.verify_certificate(None, "l", 3)


class TestCollector:
    def test_collects_to_completion(self, config7, suite7):
        collector = CertificateCollector(suite7, "l", 3, "v")
        for pid in range(3):
            partial = suite7.partial_for_certificate(pid, "l", 3, "v")
            collector.add(partial)
        assert collector.complete
        assert collector.certificate().verify(suite7)

    def test_ignores_duplicates(self, suite7):
        collector = CertificateCollector(suite7, "l", 3, "v")
        partial = suite7.partial_for_certificate(0, "l", 3, "v")
        collector.add(partial)
        collector.add(partial)
        assert collector.count == 1

    def test_ignores_invalid_partials(self, suite7):
        collector = CertificateCollector(suite7, "l", 3, "v")
        wrong_payload = suite7.partial_for_certificate(0, "l", 3, "other")
        collector.add(wrong_payload)
        assert collector.count == 0

    def test_premature_certificate_raises(self, suite7):
        collector = CertificateCollector(suite7, "l", 3, "v")
        with pytest.raises(ThresholdError):
            collector.certificate()

    def test_committee_collector_rejects_outsiders(self, suite7):
        committee = frozenset({0, 1, 2})
        collector = CertificateCollector(suite7, "c", 2, "v", committee)
        outsider_partial = suite7.partial_for_certificate(5, "c", 2, "v")
        collector.add(outsider_partial)
        assert collector.count == 0
