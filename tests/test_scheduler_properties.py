"""Property-based tests of the simulator's delivery semantics.

The synchronous model's guarantees — reliable links between correct
processes, delivery exactly one tick after sending, deterministic
ordering — are what every protocol proof stands on.  Fuzz them
directly with randomized send schedules.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.runtime.scheduler import Simulation

scheduler_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A send schedule: list of (tick, sender, receiver, payload-id).
sends_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),   # tick
        st.integers(min_value=0, max_value=4),   # sender
        st.integers(min_value=0, max_value=4),   # receiver
        st.integers(min_value=0, max_value=99),  # payload id
    ),
    max_size=30,
)


def run_schedule(sends, horizon=10):
    """Every process follows the same script: send what the schedule
    says at each tick; log everything received."""
    config = SystemConfig.with_optimal_resilience(5)
    simulation = Simulation(config, seed=0)
    received: dict[int, list] = {pid: [] for pid in config.processes}

    by_tick_sender: dict[tuple, list] = {}
    for tick, sender, receiver, payload in sends:
        by_tick_sender.setdefault((tick, sender), []).append((receiver, payload))

    def protocol_for(pid):
        def protocol(ctx):
            for tick in range(horizon):
                for receiver, payload in by_tick_sender.get((tick, pid), []):
                    ctx.send(receiver, (pid, tick, payload))
                yield
                received[pid].extend(
                    (e.sender, e.payload, e.delivered_at) for e in ctx.inbox
                )
            return None

        return protocol

    for pid in config.processes:
        simulation.add_process(pid, protocol_for(pid))
    simulation.run()
    return received


class TestDeliverySemantics:
    @scheduler_settings
    @given(sends=sends_strategy)
    def test_reliable_exactly_once_delivery(self, sends):
        """Every scheduled send is delivered exactly once, at exactly
        tick+1, to exactly its addressee."""
        received = run_schedule(sends)
        expected: dict[int, list] = {pid: [] for pid in range(5)}
        for tick, sender, receiver, payload in sends:
            expected[receiver].append((sender, (sender, tick, payload), tick + 1))
        for pid in range(5):
            assert sorted(received[pid], key=repr) == sorted(
                expected[pid], key=repr
            )

    @scheduler_settings
    @given(sends=sends_strategy)
    def test_inbox_ordering_deterministic(self, sends):
        """Two identical runs produce byte-identical reception logs."""
        assert run_schedule(sends) == run_schedule(sends)

    @scheduler_settings
    @given(
        sends=sends_strategy,
        seed_a=st.integers(min_value=0, max_value=100),
    )
    def test_word_conservation(self, sends, seed_a):
        """Ledger total equals the number of scheduled cross-process
        sends (payloads here are 1 word; self-sends are free)."""
        config = SystemConfig.with_optimal_resilience(5)
        simulation = Simulation(config, seed=seed_a)
        by_tick_sender: dict[tuple, list] = {}
        for tick, sender, receiver, payload in sends:
            by_tick_sender.setdefault((tick, sender), []).append(
                (receiver, payload)
            )

        def protocol_for(pid):
            def protocol(ctx):
                for tick in range(8):
                    for receiver, payload in by_tick_sender.get((tick, pid), []):
                        ctx.send(receiver, payload)
                    yield
                return None

            return protocol

        for pid in config.processes:
            simulation.add_process(pid, protocol_for(pid))
        result = simulation.run()
        cross_sends = sum(1 for _, s, r, _ in sends if s != r)
        assert result.correct_words == cross_sends
