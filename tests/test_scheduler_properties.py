"""Property-based tests of the simulator's delivery semantics.

The synchronous model's guarantees — reliable links between correct
processes, delivery exactly one tick after sending, deterministic
ordering — are what every protocol proof stands on.  Fuzz them
directly with randomized send schedules.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.runtime.scheduler import Simulation

scheduler_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A send schedule: list of (tick, sender, receiver, payload-id).
sends_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),   # tick
        st.integers(min_value=0, max_value=4),   # sender
        st.integers(min_value=0, max_value=4),   # receiver
        st.integers(min_value=0, max_value=99),  # payload id
    ),
    max_size=30,
)


def run_schedule(sends, horizon=10):
    """Every process follows the same script: send what the schedule
    says at each tick; log everything received."""
    config = SystemConfig.with_optimal_resilience(5)
    simulation = Simulation(config, seed=0)
    received: dict[int, list] = {pid: [] for pid in config.processes}

    by_tick_sender: dict[tuple, list] = {}
    for tick, sender, receiver, payload in sends:
        by_tick_sender.setdefault((tick, sender), []).append((receiver, payload))

    def protocol_for(pid):
        def protocol(ctx):
            for tick in range(horizon):
                for receiver, payload in by_tick_sender.get((tick, pid), []):
                    ctx.send(receiver, (pid, tick, payload))
                yield
                received[pid].extend(
                    (e.sender, e.payload, e.delivered_at) for e in ctx.inbox
                )
            return None

        return protocol

    for pid in config.processes:
        simulation.add_process(pid, protocol_for(pid))
    simulation.run()
    return received


class TestDeliverySemantics:
    @scheduler_settings
    @given(sends=sends_strategy)
    def test_reliable_exactly_once_delivery(self, sends):
        """Every scheduled send is delivered exactly once, at exactly
        tick+1, to exactly its addressee."""
        received = run_schedule(sends)
        expected: dict[int, list] = {pid: [] for pid in range(5)}
        for tick, sender, receiver, payload in sends:
            expected[receiver].append((sender, (sender, tick, payload), tick + 1))
        for pid in range(5):
            assert sorted(received[pid], key=repr) == sorted(
                expected[pid], key=repr
            )

    @scheduler_settings
    @given(sends=sends_strategy)
    def test_inbox_ordering_deterministic(self, sends):
        """Two identical runs produce byte-identical reception logs."""
        assert run_schedule(sends) == run_schedule(sends)

    @scheduler_settings
    @given(
        sends=sends_strategy,
        seed_a=st.integers(min_value=0, max_value=100),
    )
    def test_word_conservation(self, sends, seed_a):
        """Ledger total equals the number of scheduled cross-process
        sends (payloads here are 1 word; self-sends are free)."""
        config = SystemConfig.with_optimal_resilience(5)
        simulation = Simulation(config, seed=seed_a)
        by_tick_sender: dict[tuple, list] = {}
        for tick, sender, receiver, payload in sends:
            by_tick_sender.setdefault((tick, sender), []).append(
                (receiver, payload)
            )

        def protocol_for(pid):
            def protocol(ctx):
                for tick in range(8):
                    for receiver, payload in by_tick_sender.get((tick, pid), []):
                        ctx.send(receiver, payload)
                    yield
                return None

            return protocol

        for pid in config.processes:
            simulation.add_process(pid, protocol_for(pid))
        result = simulation.run()
        cross_sends = sum(1 for _, s, r, _ in sends if s != r)
        assert result.correct_words == cross_sends

class FlatScanSimulation(Simulation):
    """The historical delivery implementation: one flat per-tick list of
    ``(delay, envelope)`` pairs, scanned and regrouped at delivery time.

    PR 6 replaced it with the receiver-slotted wheel; this subclass
    restores the old behavior through the wheel's three override points
    so the equivalence property below can prove the swap is
    observationally invisible (byte-identical traces)."""

    def _slot_copies(self, envelope, copies):
        for delay in copies:
            self._due.setdefault(self.tick + 1, []).append((delay, envelope))

    def _pending_at(self, tick, down):
        deliveries = self._due.pop(tick, [])
        if down:
            deliveries = [
                (delay, e) for delay, e in deliveries if e.receiver not in down
            ]
        pending = {}
        for delay, envelope in deliveries:
            pending.setdefault(envelope.receiver, []).append((delay, envelope))
        return pending

    def _rushed_to(self, pid):
        return [
            e for _, e in self._due.get(self.tick + 1, []) if e.receiver == pid
        ]


class TestSlottedWheelEquivalence:
    """The slotted delivery wheel must be a pure data-structure swap:
    same seeds, same faults, same adversary => byte-identical traces."""

    @staticmethod
    def _weak_ba_trace(
        simulation_cls, n, seed, fault_plan, byzantine_pids, wal_dir=None
    ):
        from repro.adversary.behaviors import SilentBehavior
        from repro.config import SystemConfig as SC
        from repro.core.validity import ExternalValidity
        from repro.core.weak_ba import weak_ba_protocol
        from repro.recovery import RecoveryManager

        config = SC.with_optimal_resilience(n)
        recovery = RecoveryManager(wal_dir) if wal_dir is not None else None
        simulation = simulation_cls(
            config, seed=seed, fault_plan=fault_plan, recovery=recovery
        )
        validity = ExternalValidity(lambda v: isinstance(v, str))
        for pid in config.processes:
            if pid in byzantine_pids:
                simulation.add_byzantine(pid, SilentBehavior())
            else:
                simulation.add_process(
                    pid, lambda ctx: weak_ba_protocol(ctx, "w", validity)
                )
        result = simulation.run()
        return result.trace.canonical(), result.correct_words

    def test_weak_ba_traces_identical_across_fault_grid(self, tmp_path):
        from repro.faults.plan import FaultPlan, ProcessCrash

        plans = [
            None,
            FaultPlan(seed=9, duplicate_rate=0.4, delay_rate=0.5),
            FaultPlan(
                seed=4,
                drop_rate=0.1,
                duplicate_rate=0.3,
                delay_rate=0.4,
                reorder_rate=0.5,
                lossy=frozenset({1}),
            ),
            FaultPlan(
                seed=2,
                duplicate_rate=0.5,
                delay_rate=0.5,
                crashes=(ProcessCrash(pid=0, at_tick=3, restart_tick=9),),
            ),
        ]
        case = 0
        for n, byzantine in ((3, ()), (5, (4,)), (7, (2, 5))):
            for plan in plans:
                for seed in (0, 3):
                    # Crash plans need a WAL to replay on restart; give
                    # each run its own so no state leaks between them.
                    crashes = plan is not None and plan.crashes
                    wheel = self._weak_ba_trace(
                        Simulation, n, seed, plan, byzantine,
                        tmp_path / f"wheel{case}" if crashes else None,
                    )
                    flat = self._weak_ba_trace(
                        FlatScanSimulation, n, seed, plan, byzantine,
                        tmp_path / f"flat{case}" if crashes else None,
                    )
                    assert wheel == flat, (n, byzantine, plan, seed)
                    case += 1

    @scheduler_settings
    @given(
        sends=sends_strategy,
        seed=st.integers(min_value=0, max_value=50),
        plan_seed=st.integers(min_value=0, max_value=50),
    )
    def test_randomized_schedules_identical_under_faults(
        self, sends, seed, plan_seed
    ):
        """Fuzzed send schedules under a heavy fault plan: both
        implementations log byte-identical receptions.  (Crash windows
        need a WAL directory, so they are covered by the grid test
        above, not re-fuzzed here.)"""
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(
            seed=plan_seed,
            drop_rate=0.15,
            duplicate_rate=0.35,
            delay_rate=0.45,
            reorder_rate=0.5,
        )

        def run_with(simulation_cls):
            config = SystemConfig.with_optimal_resilience(5)
            simulation = simulation_cls(config, seed=seed, fault_plan=plan)
            received = {pid: [] for pid in config.processes}
            by_tick_sender = {}
            for tick, sender, receiver, payload in sends:
                by_tick_sender.setdefault((tick, sender), []).append(
                    (receiver, payload)
                )

            def protocol_for(pid):
                def protocol(ctx):
                    for tick in range(10):
                        for receiver, payload in by_tick_sender.get(
                            (tick, pid), []
                        ):
                            ctx.send(receiver, (pid, tick, payload))
                        yield
                        received[pid].extend(
                            (e.sender, e.payload, e.delivered_at)
                            for e in ctx.inbox
                        )
                    return None

                return protocol

            for pid in config.processes:
                simulation.add_process(pid, protocol_for(pid))
            result = simulation.run()
            return received, result.trace.canonical(), result.correct_words

        assert run_with(Simulation) == run_with(FlatScanSimulation)
