"""The backend registry itself, and the refactor's no-op guarantee.

The Protocol API is a pure indirection: dispatching through
``get_backend("cohen")`` must produce byte-identical traces
(``Trace.canonical()``) and word bills to importing the protocol
modules directly — the acceptance bar for moving every consumer onto
the registry without re-validating five subsystems."""

import pytest

import repro.protocols as protocols
from repro.config import SystemConfig
from repro.core.adaptive_strong_ba import run_adaptive_strong_ba
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.errors import ConfigurationError
from repro.protocols.base import Backend


class TestRegistry:
    def test_known_backends(self):
        assert protocols.backend_names() == ("civit", "cohen")

    def test_get_backend_roundtrip(self):
        for name in protocols.backend_names():
            assert protocols.get_backend(name).name == name

    def test_unknown_backend_lists_known_sorted(self):
        with pytest.raises(ConfigurationError) as err:
            protocols.get_backend("nope")
        assert "'nope'" in str(err.value)
        assert "['civit', 'cohen']" in str(err.value)

    def test_reregistration_must_be_idempotent(self):
        cohen = protocols.get_backend("cohen")
        assert protocols.register_backend(cohen) is cohen  # same object: ok
        impostor = Backend(
            name="cohen",
            title="impostor",
            paper="none",
            run_weak_ba=run_weak_ba,
            run_strong_ba=run_strong_ba,
            run_adaptive_strong_ba=run_adaptive_strong_ba,
            weak_ba_protocol=run_weak_ba,
            strong_ba_protocol=run_strong_ba,
            adaptive_strong_ba_protocol=run_adaptive_strong_ba,
        )
        with pytest.raises(ConfigurationError):
            protocols.register_backend(impostor)

    def test_backend_name_must_be_identifier(self):
        with pytest.raises(ConfigurationError):
            Backend(
                name="not a name",
                title="x",
                paper="y",
                run_weak_ba=run_weak_ba,
                run_strong_ba=run_strong_ba,
                run_adaptive_strong_ba=run_adaptive_strong_ba,
                weak_ba_protocol=run_weak_ba,
                strong_ba_protocol=run_strong_ba,
                adaptive_strong_ba_protocol=run_adaptive_strong_ba,
            )

    def test_replay_builders_registered_on_import(self):
        from repro.recovery.replay import _PROTOCOLS

        for backend in protocols.all_backends():
            for name in backend.replay_builders:
                assert name in _PROTOCOLS

    def test_every_backend_publishes_envelopes(self):
        config = SystemConfig.with_optimal_resilience(7)
        for backend in protocols.all_backends():
            assert backend.strong_ba_tick_bound(config) > 0
            budget_0 = backend.strong_ba_word_budget(config, 0)
            budget_t = backend.strong_ba_word_budget(config, config.t)
            assert 0 < budget_0 <= budget_t

    def test_shared_core_claim_is_true(self):
        """civit declares it reuses cohen's weak BA; hold it to that."""
        civit = protocols.get_backend("civit")
        cohen = protocols.get_backend(civit.weak_ba_shares_core_with)
        assert civit.run_weak_ba is cohen.run_weak_ba
        assert civit.weak_ba_protocol is cohen.weak_ba_protocol


class TestDispatchIsByteIdentical:
    """Same seed, same inputs: registry dispatch vs direct import."""

    def test_strong_ba(self, config7, test_seed):
        inputs = {p: p % 2 for p in config7.processes}
        direct = run_strong_ba(config7, inputs, seed=test_seed)
        dispatched = protocols.get_backend("cohen").run_strong_ba(
            config7, inputs, seed=test_seed
        )
        assert dispatched.trace.canonical() == direct.trace.canonical()
        assert dispatched.correct_words == direct.correct_words

    def test_weak_ba(self, config7, test_seed):
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        inputs = {p: f"v{p % 2}" for p in config7.processes}
        direct = run_weak_ba(config7, inputs, validity, seed=test_seed)
        dispatched = protocols.get_backend("cohen").run_weak_ba(
            config7, inputs, validity, seed=test_seed
        )
        assert dispatched.trace.canonical() == direct.trace.canonical()
        assert dispatched.correct_words == direct.correct_words

    def test_adaptive_strong_ba(self, config7, test_seed):
        inputs = {p: "V" for p in config7.processes}
        direct = run_adaptive_strong_ba(config7, inputs, seed=test_seed)
        dispatched = protocols.get_backend("cohen").run_adaptive_strong_ba(
            config7, inputs, seed=test_seed
        )
        assert dispatched.trace.canonical() == direct.trace.canonical()
        assert dispatched.correct_words == direct.correct_words

    def test_civit_dispatch_deterministic(self, config7, test_seed):
        """The new backend honors the same determinism contract."""
        civit = protocols.get_backend("civit")
        inputs = {p: p % 2 for p in config7.processes}
        first = civit.run_strong_ba(config7, inputs, seed=test_seed)
        second = civit.run_strong_ba(config7, inputs, seed=test_seed)
        assert first.trace.canonical() == second.trace.canonical()
        assert first.correct_words == second.correct_words
