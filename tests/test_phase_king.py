"""Tests for the unauthenticated Phase-King baseline."""

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.fallback.phase_king import run_phase_king


def pk_config(t: int) -> SystemConfig:
    return SystemConfig(n=4 * t + 1, t=t)


class TestResilienceGate:
    def test_rejects_insufficient_n(self):
        with pytest.raises(ConfigurationError):
            run_phase_king(SystemConfig(n=7, t=3), {p: 1 for p in range(7)})

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            run_phase_king(pk_config(1), {p: 2 for p in range(5)})


class TestStrongUnanimity:
    @pytest.mark.parametrize("t", [1, 2, 3])
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_failure_free(self, t, value):
        config = pk_config(t)
        result = run_phase_king(config, {p: value for p in config.processes})
        assert result.unanimous_decision() == value

    @pytest.mark.parametrize("t", [1, 2])
    def test_unanimous_with_max_silent_failures(self, t):
        config = pk_config(t)
        byzantine = {p: SilentBehavior() for p in range(1, t + 1)}
        inputs = {p: 1 for p in config.processes if p not in byzantine}
        result = run_phase_king(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1


class TestAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_inputs_agree(self, seed):
        config = pk_config(2)
        inputs = {p: p % 2 for p in config.processes}
        result = run_phase_king(config, inputs, seed=seed)
        assert result.unanimous_decision() in (0, 1)

    def test_mixed_inputs_with_garbage(self):
        config = pk_config(2)
        byzantine = {3: GarbageSpammer(), 7: SilentBehavior()}
        inputs = {
            p: p % 2 for p in config.processes if p not in byzantine
        }
        result = run_phase_king(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() in (0, 1)


class TestComplexity:
    def test_no_signatures_anywhere(self):
        config = pk_config(2)
        result = run_phase_king(config, {p: 1 for p in config.processes})
        assert result.ledger.signature_count() == 0

    def test_words_cubic_at_proportional_t(self):
        """With t = Θ(n), total words grow ~n^3 — the classical cost
        the paper's protocols escape."""
        words = {}
        for t in (1, 2, 4):
            config = pk_config(t)
            result = run_phase_king(config, {p: 1 for p in config.processes})
            words[config.n] = result.correct_words
        # n grows 5 -> 17 (3.4x); cubic words grow ~39x; quadratic ~12x.
        assert words[17] / words[5] > 20

    def test_round_count_is_two_per_phase(self):
        config = pk_config(2)
        result = run_phase_king(config, {p: 1 for p in config.processes})
        assert result.ticks == 2 * (config.t + 1) + 1
