"""Tests for adaptive Byzantine Broadcast (Algorithms 1 + 2)."""

import pytest

from repro.adversary.behaviors import (
    EquivocatingSender,
    GarbageSpammer,
    SilentBehavior,
)
from repro.adversary.protocol_attacks import BbVettingHelpSpammer
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import BbSenderValue, run_byzantine_broadcast
from repro.core.values import BOTTOM


class TestValidity:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_correct_sender_value_decided(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_byzantine_broadcast(config, sender=0, value="payload")
        assert result.unanimous_decision() == "payload"

    def test_correct_sender_with_failures(self, config7):
        byzantine = {2: SilentBehavior(), 5: SilentBehavior()}
        result = run_byzantine_broadcast(
            config7, sender=0, value="payload", byzantine=byzantine
        )
        assert result.unanimous_decision() == "payload"

    def test_correct_sender_with_max_failures(self, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="payload", byzantine=byzantine
        )
        assert result.unanimous_decision() == "payload"

    def test_non_default_sender(self, config7):
        result = run_byzantine_broadcast(config7, sender=4, value="from-4")
        assert result.unanimous_decision() == "from-4"

    def test_arbitrary_value_types(self, config7):
        for value in (42, ("tuple", 1), b"bytes", None):
            result = run_byzantine_broadcast(config7, sender=0, value=value)
            assert result.unanimous_decision() == value


class TestByzantineSender:
    def test_silent_sender_decides_bottom(self, config7):
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        assert result.unanimous_decision() == BOTTOM

    @pytest.mark.parametrize("seed", range(3))
    def test_equivocating_sender_agreement(self, seed, config7):
        byzantine = {
            0: EquivocatingSender(
                value_a="A",
                value_b="B",
                make_payload=lambda signed, api: BbSenderValue(
                    session="bb", signed=signed
                ),
            )
        }
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine=byzantine, seed=seed
        )
        assert result.unanimous_decision() in ("A", "B", BOTTOM)

    def test_sender_sending_to_one_process_only(self, config7):
        """A sender that whispers to a single process: the vetting
        phases must spread the value or produce an idk certificate."""

        class Whisperer:
            def step(self, api):
                if api.now == 0:
                    from repro.crypto.signatures import sign_value

                    api.send(
                        3,
                        BbSenderValue(
                            session="bb",
                            signed=sign_value(api.signer, "whisper"),
                        ),
                    )

        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: Whisperer()}
        )
        assert result.unanimous_decision() in ("whisper", BOTTOM)


class TestAdaptivity:
    def test_failure_free_has_no_non_silent_vetting_phase(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        assert result.trace.count("bb_phase_non_silent") == 0
        assert not result.fallback_was_used()

    def test_silent_sender_one_non_silent_phase_per_uninformed_leader(
        self, config7
    ):
        """With a silent sender, the first correct leader's phase mints
        the idk certificate; every later correct leader holds it and
        stays silent."""
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        assert result.trace.count("bb_phase_non_silent") == 1

    def test_help_spammers_raise_cost_linearly(self):
        config = SystemConfig.with_optimal_resilience(13)
        words = {}
        for f in (0, 1, 2):
            byzantine = {p: BbVettingHelpSpammer() for p in range(1, f + 1)}
            result = run_byzantine_broadcast(
                config, sender=0, value="v", byzantine=byzantine
            )
            assert result.unanimous_decision() == "v"
            words[f] = result.correct_words
        assert words[0] < words[1] < words[2]
        # Still adaptive: far below the quadratic fallback regime.
        assert words[2] < config.n**2

    def test_words_linear_in_n_when_failure_free(self):
        words = {}
        for n in (5, 9, 17):
            config = SystemConfig.with_optimal_resilience(n)
            result = run_byzantine_broadcast(config, sender=0, value="v")
            words[n] = result.correct_words
        assert words[17] / 17 < 2 * words[5] / 5


class TestRobustness:
    def test_garbage_spammers(self, config7):
        byzantine = {1: GarbageSpammer(), 4: GarbageSpammer(every=3)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="v", byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"

    def test_composition_scopes_recorded(self, config7):
        """Figure 1's structure: BB words come from bb and bb/weak_ba
        scopes."""
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        scopes = set(result.ledger.words_by_scope())
        assert any(s.startswith("bb") for s in scopes)
        assert any("weak_ba" in s for s in scopes)
