"""Unit tests for :class:`repro.runtime.pool.MessagePool`.

The pool realizes Lemma 18's acceptance window: the fallback runs with
round length ``2 * delta`` because correct processes may enter it up to
``delta`` apart, so a round-``r`` message can arrive while its receiver
is still in round ``r - 1``.  The invariants under test: non-matching
envelopes *survive* a ``take`` (they wait instead of being dropped),
``take_payloads`` composes the type filter with an optional predicate,
and skewed early arrivals are consumed exactly once, by the round that
logically owns them.
"""

from dataclasses import dataclass

from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool


@dataclass(frozen=True)
class RoundMsg:
    round: int
    body: str = "x"


@dataclass(frozen=True)
class OtherMsg:
    round: int


def envelope(payload, sender=0, receiver=1, at=0):
    return Envelope(
        sender=sender,
        receiver=receiver,
        payload=payload,
        sent_at=at,
        delivered_at=at + 1,
    )


class TestTake:
    def test_take_removes_only_matching(self):
        pool = MessagePool()
        early = envelope(RoundMsg(round=2), sender=3)
        due = envelope(RoundMsg(round=1), sender=4)
        pool.extend([early, due])
        taken = pool.take(lambda e: e.payload.round == 1)
        assert taken == [due]
        assert list(pool) == [early]

    def test_non_matching_messages_survive_for_a_later_take(self):
        """The Lemma 18 window: an earlier-round receiver must not lose
        a later-round message by looking at the pool too soon."""
        pool = MessagePool()
        future = envelope(RoundMsg(round=5), sender=2)
        pool.extend([future])
        assert pool.take(lambda e: e.payload.round == 4) == []
        assert len(pool) == 1  # still pooled after the non-matching take
        assert pool.take(lambda e: e.payload.round == 5) == [future]
        assert len(pool) == 0

    def test_take_preserves_arrival_order(self):
        pool = MessagePool()
        first = envelope(RoundMsg(round=1), sender=2)
        second = envelope(RoundMsg(round=1), sender=0)
        pool.extend([first, second])
        assert pool.take(lambda e: True) == [first, second]

    def test_taken_messages_are_consumed_exactly_once(self):
        pool = MessagePool()
        pool.extend([envelope(RoundMsg(round=1))])
        assert len(pool.take(lambda e: e.payload.round == 1)) == 1
        assert pool.take(lambda e: e.payload.round == 1) == []


class TestTakePayloads:
    def test_filters_by_payload_type(self):
        pool = MessagePool()
        wanted = envelope(RoundMsg(round=1), sender=1)
        noise = envelope(OtherMsg(round=1), sender=2)
        garbage = envelope("adversarial string", sender=3)
        pool.extend([wanted, noise, garbage])
        assert pool.take_payloads(RoundMsg) == [wanted]
        # The other payloads are untouched, not discarded.
        assert set(pool.peek(lambda e: True)) == {noise, garbage}

    def test_type_and_predicate_compose(self):
        pool = MessagePool()
        match = envelope(RoundMsg(round=2), sender=1)
        wrong_round = envelope(RoundMsg(round=3), sender=2)
        wrong_type = envelope(OtherMsg(round=2), sender=3)
        pool.extend([match, wrong_round, wrong_type])
        taken = pool.take_payloads(RoundMsg, lambda e: e.payload.round == 2)
        assert taken == [match]
        assert len(pool) == 2

    def test_predicate_never_sees_other_payload_types(self):
        """The type filter runs first, so predicates may touch
        type-specific attributes without guarding against garbage."""
        pool = MessagePool()
        pool.extend(
            [envelope("no .round attribute"), envelope(RoundMsg(round=7))]
        )
        taken = pool.take_payloads(RoundMsg, lambda e: e.payload.round == 7)
        assert len(taken) == 1


class TestPeek:
    def test_peek_does_not_consume(self):
        pool = MessagePool()
        pool.extend([envelope(RoundMsg(round=1))])
        assert len(pool.peek(lambda e: True)) == 1
        assert len(pool) == 1


class TestLemma18Window:
    def test_one_round_skew_is_absorbed(self):
        """A receiver still in round r-1 pools a round-r message and its
        round-r take finds it — no correct-process message is lost to
        the paper's delta entry skew."""
        pool = MessagePool()
        # Tick T: the receiver (logically in round 1) gets one on-time
        # round-1 message and one early round-2 message from a peer that
        # entered the fallback delta ahead.
        on_time = envelope(RoundMsg(round=1), sender=2, at=10)
        early = envelope(RoundMsg(round=2), sender=3, at=10)
        pool.extend([on_time, early])
        round1 = pool.take_payloads(RoundMsg, lambda e: e.payload.round == 1)
        assert round1 == [on_time]
        # Next tick: the receiver advances to round 2; the skewed
        # message is waiting alongside the newly delivered ones.
        late = envelope(RoundMsg(round=2), sender=2, at=11)
        pool.extend([late])
        round2 = pool.take_payloads(RoundMsg, lambda e: e.payload.round == 2)
        assert round2 == [early, late]
        assert len(pool) == 0

    def test_window_bounded_by_predicate_not_pool(self):
        """The pool itself never expires messages; round predicates are
        what bound the acceptance window, matching Lemma 18's 'accept
        messages for round r while in rounds r-1 and r'."""
        pool = MessagePool()
        stale = envelope(RoundMsg(round=1), sender=4, at=3)
        pool.extend([stale])
        # Rounds 2..5 take their own messages; the stale one stays.
        for r in range(2, 6):
            assert (
                pool.take_payloads(RoundMsg, lambda e, r=r: e.payload.round == r)
                == []
            )
        assert pool.peek(lambda e: True) == [stale]
