"""Civit-backend-specific depth tests.

Everything a *shared* test body can express lives in the
backend-parametrized suites (``test_strong_ba.py``,
``test_adaptive_strong_ba.py``, ``test_conformance.py``).  This file
covers what is unique to the certification-view stack: view rotation
and silence, the ``CertifiedValue`` collapse that closes the
certificate-multiplicity route to ⊥, the certificate-equivocation
attacks at the paper quorum, and the backend's integration seams
(replay builders, lazily registered MC scenario, sorted
unknown-protocol listing)."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.config import SystemConfig
from repro.errors import ConfigurationError, RecoveryError
from repro.mc.explore import explore_exhaustive
from repro.mc.scenario import make_scenario
from repro.protocols.civit import (
    BINARY_VALUES,
    CertifiedValue,
    run_civit_adaptive_strong_ba,
    run_civit_strong_ba,
)
from repro.recovery.replay import factory_from_meta


class TestCertificationViews:
    def test_unanimous_run_uses_exactly_one_view(self, config7):
        result = run_civit_strong_ba(
            config7, {p: 1 for p in config7.processes}
        )
        assert result.trace.count("civit_view_non_silent") == 1
        certified = {e.pid for e in result.trace.named("civit_certified")}
        assert certified == set(config7.processes)

    def test_silent_first_certifier_rotates_to_next_view(self, config7):
        """p0 is the view-1 certifier; silencing it must cost exactly
        one extra non-silent view, not the fallback."""
        byzantine = {0: SilentBehavior()}
        inputs = {p: 1 for p in config7.processes if p != 0}
        result = run_civit_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1
        assert not result.fallback_was_used()
        assert result.trace.count("civit_view_non_silent") <= 2

    def test_extra_views_do_not_change_the_outcome(self):
        """``num_views`` beyond the paper's t+1 is pure slack: every
        schedule still verifies (the scenario layer exposes the knob)."""
        for num_views in (2, 4):
            scenario = make_scenario(
                "civit-strong-ba",
                n=4,
                num_phases=1,
                num_views=num_views,
                adversary="none",
                input_mode="unanimous",
                max_ticks=60,
                reorder=False,
            )
            outcome = explore_exhaustive(scenario, max_runs=8)
            assert outcome.complete and outcome.ok

    def test_binary_never_decides_bottom(self, config7):
        """The ⊥→0 resolution plus certificate collapse: every seeded
        binary split still lands on a proposed value."""
        for seed in range(6):
            inputs = {p: p % 2 for p in config7.processes}
            result = run_civit_strong_ba(config7, inputs, seed=seed)
            assert result.unanimous_decision() in BINARY_VALUES


class TestCertifiedValueCollapse:
    """The load-bearing design point: certificates ride outside
    equality, so adversarially-minted certificate variants for one
    value cannot masquerade as distinct weak-BA values."""

    def test_equality_ignores_certificate(self):
        a = CertifiedValue(1).with_certificate("cert-A")
        b = CertifiedValue(1).with_certificate("cert-B")
        assert a == b
        assert hash(a) == hash(b)
        assert a.certificate != b.certificate

    def test_distinct_values_stay_distinct(self):
        assert CertifiedValue(0) != CertifiedValue(1)

    def test_words_bill_value_plus_certificate(self):
        assert CertifiedValue("anything").words() == 2


class TestAttacksAtPaperQuorum:
    def test_equivocating_certifier_cannot_break_agreement(self):
        scenario = make_scenario(
            "civit-strong-ba",
            n=4,
            num_phases=1,
            adversary="equivocating-certifier",
            max_ticks=30,
            reorder=False,
        )
        outcome = explore_exhaustive(scenario, max_runs=64)
        assert outcome.complete
        assert outcome.ok, outcome.counterexamples[0].summary

    def test_non_binary_strong_input_rejected_up_front(self, config7):
        with pytest.raises(ConfigurationError, match="binary"):
            run_civit_strong_ba(
                config7, {p: "x" for p in config7.processes}
            )

    def test_adaptive_variant_accepts_arbitrary_values(self, config5):
        result = run_civit_adaptive_strong_ba(
            config5, {p: ("tuple", p < 99) for p in config5.processes}
        )
        assert result.unanimous_decision() == ("tuple", True)


class TestIntegrationSeams:
    def test_replay_builder_rebuilds_from_meta(self):
        factory = factory_from_meta(
            {
                "protocol": "civit_strong_ba",
                "input": 1,
                "session": "civit",
            }
        )
        assert callable(factory)

    def test_unknown_protocol_error_lists_backends_sorted(self):
        with pytest.raises(RecoveryError) as err:
            factory_from_meta({"protocol": "no-such-protocol"})
        message = str(err.value)
        assert "'no-such-protocol'" in message
        listed = message.split("known: ")[1]
        assert "civit_strong_ba" in listed
        assert "civit_adaptive_strong_ba" in listed
        # The listing is the deterministically sorted registry.
        names = [n.strip("[]' ") for n in listed.rstrip(")").split(",")]
        assert names == sorted(names)

    def test_missing_protocol_key_is_a_distinct_error(self):
        with pytest.raises(RecoveryError, match="names no protocol"):
            factory_from_meta({})

    def test_mc_scenario_lazily_registered(self):
        scenario = make_scenario("civit-strong-ba", n=4, num_phases=1)
        assert scenario.name == "civit-strong-ba"
