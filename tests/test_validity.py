"""Tests for the unique-validity predicate framework."""

from repro.core.validity import (
    IDK_LABEL,
    INPUT_LABEL,
    AlwaysValid,
    BroadcastValidity,
    ExternalValidity,
    SignedInputsValidity,
)
from repro.core.values import BOTTOM
from repro.crypto.signatures import SignedValue, sign_value


def make_idk_cert(suite, config, statement="idk:bb", signers=None):
    signers = signers if signers is not None else range(config.small_quorum)
    partials = [
        suite.partial_for_certificate(pid, IDK_LABEL, config.small_quorum, statement)
        for pid in signers
    ]
    return suite.combine_certificate(
        IDK_LABEL, config.small_quorum, statement, partials
    )


class TestBroadcastValidity:
    def test_sender_signed_value_valid(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        assert validity.validate(sign_value(suite7.signer(0), "v"))

    def test_other_process_signature_invalid(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        assert not validity.validate(sign_value(suite7.signer(1), "v"))

    def test_tampered_sender_value_invalid(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        signed = sign_value(suite7.signer(0), "v")
        tampered = SignedValue(payload="w", signature=signed.signature)
        assert not validity.validate(tampered)

    def test_idk_certificate_valid(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        assert validity.validate(make_idk_cert(suite7, config7))

    def test_low_quorum_idk_cert_invalid(self, config7, suite7):
        """Downgrade guard: an idk 'certificate' from a k=1 scheme must
        not satisfy BB_valid."""
        partials = [suite7.partial_for_certificate(3, IDK_LABEL, 1, "idk:bb")]
        cert = suite7.combine_certificate(IDK_LABEL, 1, "idk:bb", partials)
        validity = BroadcastValidity(suite7, config7, sender=0)
        assert not validity.validate(cert)

    def test_garbage_invalid(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        for garbage in (None, BOTTOM, "string", 42, ("tuple",)):
            assert not validity.validate(garbage)

    def test_callable_interface(self, config7, suite7):
        validity = BroadcastValidity(suite7, config7, sender=0)
        assert validity(sign_value(suite7.signer(0), "v"))


class TestSignedInputsValidity:
    def test_input_certificate_valid(self, config7, suite7):
        partials = [
            suite7.partial_for_certificate(
                pid, INPUT_LABEL, config7.small_quorum, ("input", "v")
            )
            for pid in range(config7.small_quorum)
        ]
        cert = suite7.combine_certificate(
            INPUT_LABEL, config7.small_quorum, ("input", "v"), partials
        )
        validity = SignedInputsValidity(suite7, config7)
        assert validity.validate(cert)

    def test_wrong_label_invalid(self, config7, suite7):
        cert = make_idk_cert(suite7, config7)
        assert not SignedInputsValidity(suite7, config7).validate(cert)

    def test_non_certificate_invalid(self, config7, suite7):
        validity = SignedInputsValidity(suite7, config7)
        assert not validity.validate("v")


class TestExternalValidity:
    def test_wraps_predicate(self):
        validity = ExternalValidity(lambda v: isinstance(v, int) and v > 0)
        assert validity.validate(3)
        assert not validity.validate(-1)
        assert not validity.validate("x")

    def test_swallows_exceptions(self):
        def explosive(v):
            raise RuntimeError("boom")

        assert not ExternalValidity(explosive).validate("anything")


class TestAlwaysValid:
    def test_rejects_only_none_and_bottom(self):
        validity = AlwaysValid()
        assert validity.validate("x")
        assert validity.validate(0)
        assert not validity.validate(None)
        assert not validity.validate(BOTTOM)
