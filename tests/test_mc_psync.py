"""Model-checking partial synchrony: adversarial pre-GST schedules.

ISSUE-9 satellite: over the bounded n=4, t=1 weak-BA space, every
placement of the global stabilization time within the protocol's
decision horizon must preserve agreement and validity for *every*
adversarial pre-GST delivery schedule, and every explored schedule
must decide within a bounded number of post-GST ticks (the scenario's
horizon reports truncation as a termination violation, so liveness is
checked, not assumed).  Past the decision horizon a synchronous
protocol genuinely loses agreement under adversarial timing — the
wide-envelope legs pin the exact shape of that loss (decision splits,
with validity and every other property intact) instead of pretending
it away.

The tier-1 legs below are complete proofs over small spaces (behavior
pruning keeps them to tens-to-hundreds of runs); the ``psync``-marked
legs widen the schedule space (more delay levels, inbox reordering,
larger GST) beyond the tier-1 time budget.
"""

import pytest

from repro.errors import ModelCheckError
from repro.mc.explore import explore_exhaustive, explore_random
from repro.mc.scenario import make_scenario


def _explore(result):
    """Assert-friendly digest of an exploration result."""
    detail = [ce.summary for ce in result.counterexamples[:3]]
    return result, detail


class TestScenarioConstruction:
    def test_registry_roundtrip(self):
        scenario = make_scenario("psync-weak-ba", gst=3)
        assert scenario.name == "psync-weak-ba"
        assert scenario.params["gst"] == 3
        # params reconstruct the scenario (the replay-artifact contract)
        again = make_scenario(scenario.name, **scenario.params)
        assert again.params == scenario.params

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ModelCheckError, match="adversary"):
            make_scenario("psync-weak-ba", adversary="cert-dealer")


class TestEveryGstPlacement:
    """Safety for every GST placement — the satellite's core claim."""

    @pytest.mark.parametrize("gst", [0, 1, 2, 3, 4])
    def test_agreement_validity_proven_for_gst(self, gst):
        scenario = make_scenario("psync-weak-ba", gst=gst)
        result, detail = _explore(explore_exhaustive(scenario, max_runs=2000))
        assert result.ok, detail
        assert result.complete  # exhausted: "no counterexample" is a proof
        assert result.stats.terminal > 0

    def test_gst_zero_space_is_the_single_synchronous_run(self):
        # With gst=0 there are no pre-GST sends, hence no choice points.
        result = explore_exhaustive(make_scenario("psync-weak-ba", gst=0))
        assert result.ok and result.complete
        assert result.stats.runs == 1

    def test_no_explored_schedule_misses_the_liveness_horizon(self):
        scenario = make_scenario("psync-weak-ba", gst=4)
        result, detail = _explore(explore_exhaustive(scenario, max_runs=2000))
        assert result.ok, detail
        assert result.stats.truncated == 0


class TestComposedAdversary:
    def test_silence_plus_adversarial_timing(self):
        """f=1 crash-silence (victim identity a choice point) composed
        with every pre-GST schedule still preserves the properties."""
        scenario = make_scenario(
            "psync-weak-ba", gst=2, adversary="choose-silent"
        )
        result, detail = _explore(explore_exhaustive(scenario, max_runs=2000))
        assert result.ok, detail
        assert result.complete

    def test_random_walks_through_a_wider_space(self):
        """The reordering space is too large to exhaust in tier-1; a
        seeded random walk must still find no violation."""
        scenario = make_scenario(
            "psync-weak-ba", gst=3, reorder=True, perm_cap=3
        )
        result = explore_random(scenario, runs=20, stop_at_first=False)
        assert result.ok, [ce.summary for ce in result.counterexamples[:3]]
        assert result.stats.truncated == 0


@pytest.mark.psync
class TestWideEnvelope:
    """Beyond the tier-1 time budget: run with ``-m psync``."""

    @pytest.mark.parametrize("gst", [5, 6])
    def test_deep_gst_placements_within_decision_horizon(self, gst):
        scenario = make_scenario("psync-weak-ba", gst=gst)
        result, detail = _explore(explore_exhaustive(scenario, max_runs=20000))
        assert result.ok, detail
        assert result.complete
        assert result.stats.terminal > 0

    @pytest.mark.parametrize("gst", [7, 8])
    def test_agreement_loss_beyond_decision_horizon(self, gst):
        """The characterized failure mode of a *synchronous* protocol
        under partial synchrony: once GST lands past the decision
        horizon, the adversary can hold certificates hostage across
        round boundaries and split the decision — commit-vs-⊥, and even
        commit-vs-commit once a fallback certificate crosses a round
        late.  *Only* agreement breaks: every decided value is still ⊥
        or some correct process's own valid input, every process still
        terminates, and no other checked property fires.  This is the
        finding that motivates the partial-synchrony successor designs
        (see docs/partial_synchrony.md)."""
        from repro.core.values import BOTTOM, UNDECIDED
        from repro.mc.explore import run_schedule

        scenario = make_scenario("psync-weak-ba", gst=gst)
        result = explore_exhaustive(scenario, max_runs=20000)
        assert result.counterexamples, "expected the documented split"
        inputs = {f"v{pid}" for pid in range(4)}
        for ce in result.counterexamples:
            assert set(ce.kinds) == {"agreement"}, ce.summary
            outcome = run_schedule(scenario, list(ce.decisions))
            values = set(outcome.result.decisions.values())
            assert len(values) > 1  # the split itself
            assert UNDECIDED not in values
            assert values <= inputs | {BOTTOM}

    def test_three_level_delay_lattice(self):
        scenario = make_scenario("psync-weak-ba", gst=4, pre_gst_levels=3)
        result, detail = _explore(explore_exhaustive(scenario, max_runs=20000))
        assert result.ok, detail
        assert result.complete

    def test_silence_sweep_across_gst(self):
        for gst in (1, 3, 4):
            scenario = make_scenario(
                "psync-weak-ba", gst=gst, adversary="choose-silent"
            )
            result, detail = _explore(
                explore_exhaustive(scenario, max_runs=20000)
            )
            assert result.ok, (gst, detail)
            assert result.complete, gst

    def test_reordered_inboxes_under_gst(self):
        scenario = make_scenario(
            "psync-weak-ba", gst=2, reorder=True, perm_cap=3
        )
        result, detail = _explore(explore_exhaustive(scenario, max_runs=30000))
        assert result.ok, detail
