"""Unit tests for SystemConfig and quorum arithmetic."""

import math

import pytest

from repro.config import RunParameters, SystemConfig
from repro.errors import ConfigurationError


class TestSystemConfigValidation:
    def test_accepts_optimal_resilience(self):
        config = SystemConfig(n=7, t=3)
        assert config.n == 7
        assert config.t == 3

    def test_accepts_sub_optimal_t(self):
        config = SystemConfig(n=7, t=2)
        assert config.t == 2

    def test_rejects_too_many_faults(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=7, t=4)

    def test_rejects_non_positive_n(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=0, t=0)

    def test_rejects_negative_t(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=3, t=-1)

    def test_with_optimal_resilience_requires_odd_n(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.with_optimal_resilience(8)

    def test_with_optimal_resilience_values(self):
        for n in (1, 3, 5, 7, 21, 81):
            config = SystemConfig.with_optimal_resilience(n)
            assert config.n == 2 * config.t + 1


class TestQuorums:
    @pytest.mark.parametrize("n", [3, 5, 7, 9, 21, 41])
    def test_commit_quorum_formula(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        assert config.commit_quorum == math.ceil((n + config.t + 1) / 2)

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 21, 41])
    def test_commit_quorums_intersect_in_a_correct_process(self, n):
        """The paper's key observation: two commit quorums overlap in
        more than t processes, hence in at least one correct one."""
        config = SystemConfig.with_optimal_resilience(n)
        q = config.commit_quorum
        min_overlap = 2 * q - n
        assert min_overlap >= config.t + 1

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 21, 41])
    def test_commit_quorum_reachable_iff_lemma6_bound(self, n):
        """``n - f >= quorum``  iff  ``f <= n - quorum``; Lemma 6's
        threshold (n-t-1)/2 marks where reachability starts failing."""
        config = SystemConfig.with_optimal_resilience(n)
        for f in range(config.t + 1):
            reachable = config.commit_quorum_reachable(f)
            if f < config.fallback_failure_threshold:
                assert reachable
        assert not config.commit_quorum_reachable(config.t) or config.t == 0

    def test_small_and_full_quorums(self):
        config = SystemConfig(n=7, t=3)
        assert config.small_quorum == 4
        assert config.full_quorum == 7

    def test_leader_rotation_wraps(self):
        config = SystemConfig(n=5, t=2)
        assert config.leader_of_phase(1) == 1
        assert config.leader_of_phase(5) == 0
        assert config.leader_of_phase(7) == 2

    def test_validate_failures(self):
        config = SystemConfig(n=7, t=3)
        config.validate_failures(0)
        config.validate_failures(3)
        with pytest.raises(ConfigurationError):
            config.validate_failures(4)
        with pytest.raises(ConfigurationError):
            config.validate_failures(-1)


class TestRunParameters:
    def test_default_phase_count_is_n(self):
        config = SystemConfig(n=7, t=3)
        assert RunParameters().phases_for(config) == 7

    def test_explicit_phase_count(self):
        config = SystemConfig(n=7, t=3)
        assert RunParameters(num_phases=4).phases_for(config) == 4

    def test_rejects_non_positive_phase_count(self):
        config = SystemConfig(n=7, t=3)
        with pytest.raises(ConfigurationError):
            RunParameters(num_phases=0).phases_for(config)
