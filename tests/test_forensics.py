"""Tests for post-run Byzantine forensics."""

from repro.adversary.behaviors import EquivocatingSender, SilentBehavior
from repro.adversary.protocol_attacks import (
    DolevStrongEquivocatingSender,
    WeakBaEquivocatingLeader,
)
from repro.core.byzantine_broadcast import (
    BbSenderValue,
    byzantine_broadcast_protocol,
)
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.fallback.dolev_strong import dolev_strong_protocol
from repro.runtime.scheduler import Simulation
from repro.verify.forensics import audit_envelopes

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))


def run_recorded(config, byzantine, factory, seed=0):
    simulation = Simulation(config, seed=seed, record_envelopes=True)
    for pid, behavior in byzantine.items():
        simulation.add_byzantine(pid, behavior)
    for pid in config.processes:
        if pid not in byzantine:
            simulation.add_process(pid, factory)
    return simulation.run()


class TestEquivocationDetection:
    def test_clean_run_has_no_findings(self, config7):
        result = run_recorded(
            config7,
            {},
            lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
        )
        report = audit_envelopes(result)
        assert report.findings == []
        assert report.envelopes_audited > 0
        assert "no Byzantine evidence" in report.summary()

    def test_silent_byzantine_is_not_convicted(self, config7):
        """Soundness: silence produces no evidence (indistinguishable
        from a crash)."""
        result = run_recorded(
            config7,
            {3: SilentBehavior()},
            lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
        )
        report = audit_envelopes(result)
        assert 3 not in report.culprits

    def test_equivocating_bb_sender_convicted(self, config7):
        byzantine = {
            0: EquivocatingSender(
                "A",
                "B",
                make_payload=lambda s, api: BbSenderValue("bb", s),
            )
        }
        result = run_recorded(
            config7,
            byzantine,
            lambda ctx: byzantine_broadcast_protocol(ctx, 0, None),
        )
        report = audit_envelopes(result)
        assert report.culprits == {0}
        (finding,) = [f for f in report.findings if f.kind == "equivocation"][:1]
        assert finding.slot[0] == "BbSenderValue"

    def test_equivocating_weak_ba_leader_convicted(self, config7):
        byzantine = {
            1: WeakBaEquivocatingLeader(
                value_a="A", value_b="B", quorum=config7.commit_quorum
            )
        }
        result = run_recorded(
            config7,
            byzantine,
            lambda ctx: weak_ba_protocol(ctx, "honest", VALIDITY),
        )
        report = audit_envelopes(result)
        assert 1 in report.culprits
        kinds = {f.slot[0] for f in report.against(1)}
        assert "WbaPropose" in kinds

    def test_dolev_strong_equivocator_convicted(self, config7):
        byzantine = {0: DolevStrongEquivocatingSender("A", "B")}
        result = run_recorded(
            config7,
            byzantine,
            lambda ctx: dolev_strong_protocol(ctx, 0, None),
        )
        report = audit_envelopes(result)
        assert 0 in report.culprits

    def test_no_false_positives_on_honest_processes(self, config7):
        """Across several adversarial runs, only Byzantine processes
        are ever named."""
        scenarios = [
            {
                0: EquivocatingSender(
                    "A", "B",
                    make_payload=lambda s, api: BbSenderValue("bb", s),
                )
            },
            {0: DolevStrongEquivocatingSender("X", "Y")},
        ]
        factories = [
            lambda ctx: byzantine_broadcast_protocol(ctx, 0, None),
            lambda ctx: dolev_strong_protocol(ctx, 0, None),
        ]
        for byzantine, factory in zip(scenarios, factories):
            result = run_recorded(config7, dict(byzantine), factory)
            report = audit_envelopes(result)
            assert report.culprits <= result.corrupted

    def test_requires_recorded_envelopes(self, config7):
        simulation = Simulation(config7, seed=0)  # recording off
        for pid in config7.processes:
            simulation.add_process(
                pid, lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
            )
        result = simulation.run()
        report = audit_envelopes(result)
        assert report.envelopes_audited == 0
