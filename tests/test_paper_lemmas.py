"""The paper's lemmas as executable checks — one test per lemma.

Each test quotes the statement it reproduces (appendix numbering from
the arXiv v2 text) and exercises it on crafted scenarios.  These do not
*prove* the lemmas — they witness them under the adversaries this
repository implements, and several have adversarial *converse* checks
(the property fails when its precondition is ablated).
"""

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import (
    BbVettingHelpSpammer,
    WeakBaCommitOnlyLeader,
    WeakBaSplitFinalizeLeader,
)
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM
from repro.core.weak_ba import run_weak_ba
from repro.verify import verify_run

STR_VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


class TestSection5Lemmas:
    def test_lemma_9_non_silent_phase_with_correct_leader_returns_valid(
        self, config7
    ):
        """Lemma 9: 'If a phase is non-silent and its leader is correct,
        then all correct processes return a valid value.'  With a silent
        sender, the first correct leader's phase must leave every correct
        process holding the idk certificate (a valid value)."""
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        # Exactly one non-silent vetting phase sufficed for everyone.
        assert result.trace.count("bb_phase_non_silent") == 1
        # All correct processes then agreed (on ⊥, the idk outcome).
        assert result.unanimous_decision() == BOTTOM

    def test_lemma_10_no_idk_certificate_when_sender_correct(self, config7):
        """Lemma 10: if all correct processes hold the sender's value,
        no value signed by t+1 processes can exist — witnessed by zero
        idk replies across any adversary that asks for help."""
        byzantine = {p: BbVettingHelpSpammer() for p in (1, 2, 3)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="v", byzantine=byzantine
        )
        by_type = result.ledger.words_by_payload_type()
        assert by_type.get("BbIdkReply", 0) == 0  # nobody ever said idk
        assert result.unanimous_decision() == "v"

    def test_lemma_11_all_correct_enter_weak_ba_with_valid_input(
        self, config7
    ):
        """Lemma 11: every correct process executes the weak BA with a
        valid initial value — so the weak-BA proposals (votes) exist in
        phase 1 even when the sender was silent."""
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        # The weak BA reached a decision through its phases (not ⊥ by
        # absence of proposals): the first non-silent weak-BA phase
        # collected votes.
        votes = [
            r
            for r in result.ledger.records
            if r.payload_type == "WbaVote" and r.sender_correct
        ]
        assert votes, "valid inputs must exist for voting"

    def test_lemma_12_validity(self, config7):
        """Lemma 12 (BB validity): a correct sender's value is decided,
        across every failure pattern up to t."""
        for f in range(config7.t + 1):
            byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
            result = run_byzantine_broadcast(
                config7, sender=0, value="payload", byzantine=byzantine
            )
            assert result.unanimous_decision() == "payload"


class TestSection6Lemmas:
    def test_lemma_14_decisions_are_valid(self, config7):
        """Lemma 14: any in-phase decision passed the validity
        predicate (invalid proposals can never gather votes)."""

        class InvalidProposer(WeakBaCommitOnlyLeader):
            pass

        byzantine = {1: InvalidProposer(value=12345)}  # ints are invalid
        inputs = {p: "v" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, STR_VALIDITY, byzantine=byzantine
        )
        decision = result.unanimous_decision()
        assert decision == "v"  # the invalid value went nowhere

    def test_lemma_15_finalize_uniqueness(self, config7):
        """Lemma 15: all in-phase decisions name one value; at most one
        finalize certificate exists (split-finalize adversary)."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(value="v", recipients=frozenset({2}))
        }
        inputs = {p: "v" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, STR_VALIDITY, byzantine=byzantine
        )
        values = {
            e.get("value") for e in result.trace.named("wba_decided_in_phase")
        }
        assert len(values) <= 1
        result.unanimous_decision()

    def test_lemma_16_correct_leader_phase_decides_everyone(self, config7):
        """Lemma 16: with f < (n-t-1)/2, the first non-silent correct
        leader's phase leaves every correct process decided."""
        byzantine = {1: SilentBehavior()}  # f=1 < 1.5
        inputs = {p: "v" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, STR_VALIDITY, byzantine=byzantine
        )
        # Phase 1's leader (p1) is silent; phase 2's leader p2 is the
        # first non-silent correct leader and everyone decides there.
        phases = {
            e.get("phase") for e in result.trace.named("wba_decided_in_phase")
        }
        assert phases == {2}
        deciders = {
            e.pid for e in result.trace.named("wba_decided_in_phase")
        }
        assert deciders == set(result.correct_pids)

    def test_lemma_17_fallback_entry_within_delta(self, config7):
        """Lemma 17: if some correct process executes the fallback, all
        do, starting at most δ apart."""
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = run_weak_ba(
            config7, inputs, STR_VALIDITY, byzantine=byzantine
        )
        entries = {
            e.pid: e.tick
            for e in result.trace.named("fallback_started")
            if e.pid not in result.corrupted
        }
        assert set(entries) == set(result.correct_pids)
        assert max(entries.values()) - min(entries.values()) <= 1

    def test_lemma_19_pre_fallback_decisions_prevail(self, config7):
        """Lemma 19: a decision made before the fallback is what every
        correct process ends up with (split-finalize + fallback run)."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(value="early", recipients=frozenset({2})),
            3: SilentBehavior(),
            5: SilentBehavior(),
        }
        inputs = {
            p: f"other-{p}" for p in config7.processes if p not in byzantine
        }
        result = run_weak_ba(
            config7, inputs, STR_VALIDITY, byzantine=byzantine
        )
        assert result.unanimous_decision() == "early"

    def test_lemmas_20_to_23_via_verifier(self, config7):
        """Lemmas 20-23 (agreement, termination, unique validity,
        decide-once) over a batch of adversarial runs, via the
        structured verifier."""
        scenarios = [
            {},
            {2: SilentBehavior()},
            {1: SilentBehavior(), 4: SilentBehavior()},
            {p: SilentBehavior() for p in (1, 3, 5)},
        ]
        for byzantine in scenarios:
            inputs = {
                p: "v" for p in config7.processes if p not in byzantine
            }
            result = run_weak_ba(
                config7, inputs, STR_VALIDITY, byzantine=byzantine
            )
            report = verify_run(
                result,
                validity=lambda v: isinstance(v, str),
                allow_bottom=False,
                check_lemma6=True,
            )
            assert report.ok, report.summary()


class TestSection7Lemmas:
    def test_lemma_25_fallback_entry_within_delta(self, config7):
        """Lemma 25 (Alg. 5's version of Lemma 17)."""
        byzantine = {0: SilentBehavior()}  # kill the leader
        inputs = {p: 1 for p in config7.processes if p != 0}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        entries = {
            e.pid: e.tick
            for e in result.trace.named("fallback_started")
            if e.pid not in result.corrupted
        }
        assert set(entries) == set(result.correct_pids)
        assert max(entries.values()) - min(entries.values()) <= 1

    def test_lemma_26_agreement_needs_all_n_decide_signatures(self, config7):
        """Lemma 26's mechanism: the decide certificate is n-of-n, so
        one missing process blocks any fast decision (see also
        tests/test_strong_ba_attacks.py for the equivocation case)."""
        byzantine = {6: SilentBehavior()}
        inputs = {p: 0 for p in config7.processes if p != 6}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        assert not result.trace.any("sba_decided_fast")
        assert result.unanimous_decision() == 0

    def test_lemma_27_termination(self, config7):
        """Lemma 27: every correct process decides, with or without
        the fast path."""
        for byzantine in ({}, {0: SilentBehavior()}, {3: SilentBehavior()}):
            inputs = {
                p: 1 for p in config7.processes if p not in byzantine
            }
            result = run_strong_ba(config7, inputs, byzantine=byzantine)
            assert set(result.decisions) == set(result.correct_pids)

    def test_lemma_28_validity(self, config7):
        """Lemma 28 (strong unanimity), all failure counts."""
        for f in range(config7.t + 1):
            byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
            inputs = {p: 1 for p in config7.processes if p not in byzantine}
            result = run_strong_ba(config7, inputs, byzantine=byzantine)
            assert result.unanimous_decision() == 1

    def test_lemma_29_decide_once(self, config7):
        """Lemma 29: decisions are updated at most once (trace audit)."""
        byzantine = {0: SilentBehavior()}
        inputs = {p: 1 for p in config7.processes if p != 0}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        report = verify_run(result)
        assert report.ok, report.summary()
