"""Tests for the asyncio transport (same protocols, real time)."""

import asyncio

import pytest

from repro.asyncnet import run_async
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.strong_ba import strong_ba_protocol
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.errors import SchedulerError

TICK = 0.02


def run(coro):
    return asyncio.run(coro)


class TestAsyncTransport:
    def test_bb_over_asyncio(self, config5):
        result = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                },
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.correct_words > 0

    def test_strong_ba_over_asyncio(self, config5):
        result = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: strong_ba_protocol(ctx, 1))
                    for pid in config5.processes
                },
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == 1

    def test_weak_ba_with_network_latency(self, config5):
        """Latency below the synchrony bound must not affect outcomes."""
        validity = ExternalValidity(lambda v: isinstance(v, str))
        result = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: weak_ba_protocol(ctx, "v", validity))
                    for pid in config5.processes
                },
                tick_duration=TICK,
                latency=TICK / 2,
            )
        )
        assert result.unanimous_decision() == "v"

    def test_crashed_processes(self, config5):
        result = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                    if pid != 3
                },
                tick_duration=TICK,
                crashed=frozenset({3}),
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.corrupted == frozenset({3})

    def test_latency_must_respect_synchrony_bound(self, config5):
        with pytest.raises(SchedulerError):
            run(
                run_async(
                    config5,
                    {},
                    tick_duration=TICK,
                    latency=TICK * 2,
                )
            )

    def test_missing_process_rejected(self, config5):
        with pytest.raises(SchedulerError):
            run(
                run_async(
                    config5,
                    {0: lambda ctx: strong_ba_protocol(ctx, 1)},
                    tick_duration=TICK,
                )
            )

    def test_byzantine_behavior_over_asyncio(self, config5):
        """The same behavior objects drive Byzantine processes on the
        real transport (sans rushing)."""
        from repro.adversary.behaviors import GarbageSpammer

        validity = ExternalValidity(lambda v: isinstance(v, str))
        result = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: weak_ba_protocol(ctx, "v", validity))
                    for pid in config5.processes
                    if pid != 2
                },
                byzantine={2: GarbageSpammer()},
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.corrupted == frozenset({2})
        # Adversary words recorded but not attributed to correct processes.
        assert result.ledger.total_words > result.correct_words

    def test_word_counts_match_simulator(self, config5):
        """Transport independence: identical word totals on both
        runtimes for a deterministic failure-free run."""
        from repro.core.byzantine_broadcast import run_byzantine_broadcast

        simulated = run_byzantine_broadcast(config5, sender=0, value="v")
        asynced = run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                },
                tick_duration=TICK,
            )
        )
        assert asynced.correct_words == simulated.correct_words
