"""Tests for the graded-consensus primitive (validity, graded agreement)."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import GcEquivocator
from repro.config import SystemConfig
from repro.fallback.graded_consensus import GC_ROUNDS, graded_consensus
from repro.runtime.pool import MessagePool
from repro.runtime.scheduler import Simulation


def run_gc(config, inputs, byzantine=None, seed=0):
    byzantine = byzantine or {}
    simulation = Simulation(config, seed=seed)
    members = tuple(config.processes)

    def factory(value):
        def build(ctx):
            def protocol(ctx):
                pool = MessagePool()
                result = yield from graded_consensus(
                    ctx, members, value, "test-gc", 1, pool
                )
                return result

            return protocol(ctx)

        return build

    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            simulation.add_process(pid, factory(inputs[pid]))
    return simulation.run()


class TestValidity:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_unanimous_inputs_grade_two(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_gc(config, {p: "V" for p in config.processes})
        for pid, (value, grade) in result.decisions.items():
            assert value == "V"
            assert grade == 2

    def test_unanimous_with_silent_minority(self, config7):
        byzantine = {1: SilentBehavior(), 4: SilentBehavior(), 6: SilentBehavior()}
        inputs = {p: "V" for p in config7.processes if p not in byzantine}
        result = run_gc(config7, inputs, byzantine)
        for value, grade in result.decisions.values():
            assert value == "V"
            assert grade == 2


class TestGradedAgreement:
    def test_mixed_inputs_respect_graded_agreement(self, config7):
        inputs = {p: ("A" if p < 4 else "B") for p in config7.processes}
        result = run_gc(config7, inputs)
        self._check_graded_agreement(result.decisions.values())

    def test_equivocating_claimer(self, config7):
        members = tuple(config7.processes)
        byzantine = {
            3: GcEquivocator(
                session="test-gc", members=members, value_a="A", value_b="B"
            )
        }
        inputs = {p: "V" for p in config7.processes if p != 3}
        result = run_gc(config7, inputs, byzantine)
        # All honest share the input value, so equivocation cannot stop
        # grade 2 here: the equivocator alone cannot certify "A" or "B".
        for value, grade in result.decisions.values():
            assert value == "V"
            assert grade == 2
        self._check_graded_agreement(result.decisions.values())

    def test_equivocation_with_split_honest_inputs(self, config7):
        members = tuple(config7.processes)
        byzantine = {
            0: GcEquivocator(
                session="test-gc", members=members, value_a="A", value_b="B"
            )
        }
        inputs = {p: ("A" if p % 2 else "B") for p in config7.processes if p != 0}
        result = run_gc(config7, inputs, byzantine, seed=3)
        self._check_graded_agreement(result.decisions.values())

    @staticmethod
    def _check_graded_agreement(outputs):
        """If any output has grade 2 on v, every output is (v, >=1)."""
        grade2_values = {v for v, g in outputs if g == 2}
        assert len(grade2_values) <= 1
        if grade2_values:
            (v,) = grade2_values
            for value, grade in outputs:
                assert grade >= 1
                assert value == v


class TestStructure:
    def test_round_count_constant(self):
        assert GC_ROUNDS == 4

    def test_word_complexity_quadratic(self):
        words = {}
        for n in (5, 9, 13):
            config = SystemConfig.with_optimal_resilience(n)
            result = run_gc(config, {p: "V" for p in config.processes})
            words[n] = result.correct_words
        # Quadratic growth: words/n^2 roughly flat, words/n clearly growing.
        assert words[13] / 13**2 < 2 * words[5] / 5**2
        assert words[13] / 13 > 1.5 * words[5] / 5

    def test_ignores_garbage_claims(self, config7):
        from repro.adversary.behaviors import GarbageSpammer

        byzantine = {2: GarbageSpammer()}
        inputs = {p: "V" for p in config7.processes if p != 2}
        result = run_gc(config7, inputs, byzantine)
        for value, grade in result.decisions.values():
            assert value == "V"
            assert grade == 2
