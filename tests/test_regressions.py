"""Regression tests for concrete bugs found (and fixed) during
development — each encodes the failure mode so it cannot quietly return.
"""

import asyncio

from repro.adversary.behaviors import SilentBehavior
from repro.asyncnet import run_async
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba, WbaHelpReq


class TestInfiniteWaitLoop:
    """Bug: ``ctx.now < float("inf")`` is always true, so decided
    processes waiting for a fallback certificate that never comes spun
    forever.  Fixed by handling the unset timer explicitly."""

    def test_weak_ba_terminates_without_fallback(self, config5):
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        result = run_weak_ba(
            config5, {p: "v" for p in config5.processes}, validity
        )
        # Bounded run: phases + help rounds + grace, nowhere near max_ticks.
        assert result.ticks < 6 * config5.n + 15

    def test_strong_ba_terminates_without_fallback(self, config5):
        result = run_strong_ba(config5, {p: 1 for p in config5.processes})
        assert result.ticks < 15


class TestAsyncClockDrift:
    """Bug: per-task relative sleeps let heavy-working tasks drift a
    full round behind their peers, breaking the synchrony bound.  Fixed
    by pinning round boundaries to an absolute shared clock."""

    def test_async_word_bill_matches_simulator(self, config5):
        simulated = run_byzantine_broadcast(config5, sender=0, value="v")
        asynced = asyncio.run(
            run_async(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                },
                tick_duration=0.03,
            )
        )
        assert asynced.correct_words == simulated.correct_words
        # Drift showed up as a *second* non-silent phase.
        assert asynced.trace.count("phase_non_silent") == 1


class TestPoolStranding:
    """Bug: a message delivered one scheduling beat early landed in the
    outer protocol's pool while the inner sub-protocol created a fresh
    one, stranding the message.  Fixed by sharing the pool downward."""

    def test_bb_threads_its_pool_into_weak_ba(self, config5):
        import inspect

        from repro.core import byzantine_broadcast as bb

        source = inspect.getsource(bb.byzantine_broadcast_protocol)
        assert "pool=pool" in source  # the weak-BA call shares the pool

    def test_smr_shares_one_pool_across_slots(self, config5):
        import inspect

        from repro.apps import smr

        source = inspect.getsource(smr.smr_replica_protocol)
        assert "pool=pool" in source


class TestQuorumDowngrade:
    """Bug class: verifying a certificate without pinning the expected
    quorum lets an adversary substitute a lower-threshold scheme of the
    same label.  ``verify_certificate`` pins label, k, and members."""

    def test_low_quorum_cert_rejected_by_strict_verification(self, config7, suite7):
        low = suite7.combine_certificate(
            "idk", 1, "stmt",
            [suite7.partial_for_certificate(3, "idk", 1, "stmt")],
        )
        assert low.verify(suite7)  # fine under its own scheme
        assert not suite7.verify_certificate(low, "idk", config7.small_quorum)


class TestSplitLeaderQuorumArithmetic:
    """Bug: the split-finalize attack only added the leader's own share,
    so with f = 3 it could not reach ⌈(n+t+1)/2⌉ and silently became a
    no-op (the ablation then measured nothing).  The attack now uses the
    whole coalition's shares."""

    def test_split_leader_effective_at_f_three(self, config7):
        from repro.adversary.protocol_attacks import WeakBaSplitFinalizeLeader
        from repro.runtime.scheduler import Simulation
        from repro.core.weak_ba import weak_ba_protocol

        validity = ExternalValidity(lambda v: isinstance(v, str))
        simulation = Simulation(config7, seed=0)
        simulation.add_byzantine(
            1,
            WeakBaSplitFinalizeLeader(
                value="split", recipients=frozenset({2, 4})
            ),
        )
        simulation.add_byzantine(5, SilentBehavior())
        simulation.add_byzantine(6, SilentBehavior())
        for pid in (0, 2, 3, 4):
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "own", validity)
            )
        result = simulation.run()
        # The attack must actually decide the recipients in-phase...
        assert result.trace.count("wba_decided_in_phase") >= 2
        # ...and agreement must still hold afterwards.
        assert result.unanimous_decision() == "split"


class TestHelpAnswerCost:
    """Section 6.1: 'the number of messages sent by correct processes is
    linear in the number of help requests' — Byzantine help_req spam
    costs the honest side O(n) words per requester, never O(n^2)."""

    def test_byzantine_help_requests_cost_linear_answers(self, config7):
        class HelpSpammer:
            def step(self, api):
                # Send a (valid) help request every tick after the phases.
                if api.now >= 6 * api.config.n:
                    partial = api.suite.partial_for_certificate(
                        api.pid,
                        f"wba-fb:wba",
                        api.config.small_quorum,
                        "start-fallback",
                    )
                    api.broadcast(WbaHelpReq(session="wba", partial=partial))

        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        byzantine = {3: HelpSpammer()}
        inputs = {p: "v" for p in config7.processes if p != 3}
        result = run_weak_ba(config7, inputs, validity, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        help_words = result.ledger.words_by_payload_type().get("WbaHelp", 0)
        # One answer per decided correct process per request tick seen,
        # bounded well below quadratic.
        assert 0 < help_words <= 3 * config7.n

class TestDuplicateDelayBilling:
    """Perf-bug audit (PR 6): could a duplicated wire copy of a message
    be billed twice when the duplicate is also delayed — in particular
    when the copies straddle a crash window?  The audit found the ledger
    bills at *send* time, once, before the fault injector multiplies the
    envelope into wire copies; these tests pin that accounting so a
    future refactor that bills per delivered copy fails loudly."""

    def _run_ping(self, plan, wal_dir=None):
        from repro.config import SystemConfig
        from repro.recovery import RecoveryManager
        from repro.runtime.scheduler import Simulation

        config = SystemConfig.with_optimal_resilience(3)
        recovery = RecoveryManager(wal_dir) if wal_dir is not None else None
        simulation = Simulation(
            config, seed=0, fault_plan=plan, recovery=recovery
        )
        received = {pid: 0 for pid in config.processes}

        def protocol_for(pid):
            def protocol(ctx):
                for tick in range(8):
                    if pid == 0 and tick < 2:
                        ctx.send(1, ("ping", tick))
                    yield
                    received[pid] += len(ctx.inbox)
                return None

            return protocol

        for pid in config.processes:
            simulation.add_process(pid, protocol_for(pid))
        result = simulation.run()
        return result, received

    def test_duplicated_delayed_message_billed_once(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(seed=1, duplicate_rate=1.0, delay_rate=1.0)
        result, received = self._run_ping(plan)
        # Two sends: two words on the ledger, however many wire copies.
        assert result.correct_words == 2
        assert received[1] > 2  # duplicates really did hit the wire

    def test_copies_lost_in_crash_window_still_billed_once(self, tmp_path):
        """Receiver is down for the whole delivery window: every wire
        copy (original, duplicates, delayed duplicates) is lost, yet the
        sender's bill is unchanged — exactly one word per send, never
        zero and never per-copy."""
        from repro.faults.plan import FaultPlan, ProcessCrash

        plan = FaultPlan(
            seed=1,
            duplicate_rate=1.0,
            delay_rate=1.0,
            crashes=(ProcessCrash(pid=1, at_tick=1, restart_tick=5),),
        )
        result, received = self._run_ping(plan, wal_dir=tmp_path)
        assert received[1] == 0  # both deliveries fell inside the window
        assert result.correct_words == 2
