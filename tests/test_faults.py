"""Regression suite for the deterministic fault-injection layer.

Covers the :mod:`repro.faults` plan/injector semantics, the simulator
and both real transports running under seeded fault plans (safety and
word bounds must survive), reproducibility (same seed, same faults, same
canonical trace), and the TCP transport's connection-lifecycle hardening
(reconnect after reset, run timeouts, leak-free teardown — the suite
runs with ``ResourceWarning`` as an error).
"""

import asyncio
import dataclasses

import pytest

from repro.asyncnet import run_async
from repro.asyncnet.tcp import run_over_tcp
from repro.config import RunParameters, derive_rng
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import run_strong_ba, strong_ba_protocol
from repro.errors import ConfigurationError, TerminationViolation
from repro.faults import ConnectionReset, FaultDecision, FaultInjector, FaultPlan
from repro.runtime.envelope import Envelope
from repro.verify import verify_under_plan

TICK = 0.05

# The workhorse plan of this suite: send-omission faults confined to
# process 1 (so |lossy ∪ corrupted| <= t and every property must hold),
# plus model-legal duplication, reordering, and sub-delta delays on all
# edges.  Chosen constants are asserted deterministic below.
MIXED_PLAN = FaultPlan(
    seed=11,
    drop_rate=0.3,
    duplicate_rate=0.3,
    reorder_rate=0.5,
    delay_rate=0.5,
    max_delay=0.4,
    lossy=frozenset({1}),
)


def run(coro):
    return asyncio.run(coro)


def envelopes_from(senders, receiver=0, tick=3):
    return [
        Envelope(sender=s, receiver=receiver, payload=i, sent_at=tick, delivered_at=tick + 1)
        for i, s in enumerate(senders)
    ]


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_delay=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(resets=(ConnectionReset(tick=-1, sender=0, receiver=1),))
        with pytest.raises(ConfigurationError):
            FaultPlan(max_duplicates=-1)

    def test_decide_is_pure(self):
        plan = FaultPlan(seed=3, drop_rate=0.5, duplicate_rate=0.5, delay_rate=0.5)
        first = [plan.decide(0, 1, tick=t, seq=s) for t in range(20) for s in range(3)]
        second = [plan.decide(0, 1, tick=t, seq=s) for t in range(20) for s in range(3)]
        assert first == second
        # Coordinates matter: a different edge sees different faults.
        other = [plan.decide(1, 0, tick=t, seq=s) for t in range(20) for s in range(3)]
        assert first != other

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = a.reseeded(2)
        decisions = lambda p: [p.decide(0, 1, t, 0).drop for t in range(64)]
        assert decisions(a) != decisions(b)
        assert decisions(b) == decisions(FaultPlan(seed=2, drop_rate=0.5))

    def test_lossy_scopes_drops_to_omission_senders(self):
        plan = FaultPlan(seed=5, drop_rate=1.0, lossy=frozenset({2}))
        assert all(plan.decide(2, r, t, 0).drop for r in (0, 1) for t in range(10))
        assert not any(plan.decide(0, r, t, 0).drop for r in (1, 2) for t in range(10))
        assert plan.faulty == frozenset({2})
        # Without drops nobody is charged as faulty.
        assert FaultPlan(lossy=frozenset({2})).faulty == frozenset()

    def test_copies_expand_duplicates_and_drops(self):
        assert FaultDecision(drop=True).copies() == []
        assert FaultDecision(duplicates=2, delay=0.25).copies() == [0.25, 0.25, 0.25]
        plan = FaultPlan(seed=0, duplicate_rate=1.0, max_duplicates=1)
        assert all(
            len(plan.decide(0, 1, t, 0).copies()) == 2 for t in range(10)
        )

    def test_slow_sender_always_max_delay(self):
        plan = FaultPlan(seed=9, slow=frozenset({4}), max_delay=0.3)
        assert all(plan.decide(4, 0, t, 0).delay == 0.3 for t in range(10))
        assert all(plan.decide(0, 4, t, 0).delay == 0.0 for t in range(10))

    def test_order_inbox_is_arrival_order_independent(self):
        plan = FaultPlan(seed=7, reorder_rate=1.0)
        inbox = envelopes_from([3, 1, 4, 0, 2])
        shuffled_arrival = list(reversed(inbox))
        assert plan.order_inbox(0, 3, inbox) == plan.order_inbox(0, 3, shuffled_arrival)
        # Some tick must actually be scrambled away from sender order.
        scrambles = [
            plan.order_inbox(0, t, inbox) != sorted(inbox, key=lambda e: e.sender)
            for t in range(10)
        ]
        assert any(scrambles)

    def test_order_inbox_without_reordering_sorts_by_sender(self):
        plan = FaultPlan(seed=7)
        inbox = envelopes_from([3, 1, 4, 0, 2])
        assert [e.sender for e in plan.order_inbox(0, 3, inbox)] == [0, 1, 2, 3, 4]

    def test_describe_mentions_active_faults(self):
        text = MIXED_PLAN.describe()
        assert "drop=0.3" in text and "[1]" in text and "reorder=0.5" in text
        assert "pristine" in FaultPlan(seed=4).describe()
        assert not FaultPlan(seed=4).is_active()
        assert MIXED_PLAN.is_active()

    def test_derive_rng_shared_idiom(self):
        """The fault layer and the scheduler derive their RNG streams
        from one seed via the same ``seed ^ tag`` idiom."""
        assert derive_rng(3, 0x1B0C).random() == derive_rng(3, 0x1B0C).random()

    def test_zero_duplicate_cap_is_a_pure_noop(self):
        """Regression: a fired duplicate verdict with ``max_duplicates=0``
        must yield zero extra copies AND leave every other stream (delay)
        exactly as a duplicate-free plan would."""
        capped = FaultPlan(
            seed=6, duplicate_rate=1.0, max_duplicates=0, delay_rate=1.0
        )
        uncapped = dataclasses.replace(capped, max_duplicates=2)
        quiet = dataclasses.replace(capped, duplicate_rate=0.0)
        for t in range(20):
            for s in range(3):
                with_cap = capped.decide(0, 1, t, s)
                assert with_cap.duplicates == 0
                assert with_cap.copies() == [with_cap.delay]
                # Delay stream is independent of the duplicate config.
                assert with_cap.delay == uncapped.decide(0, 1, t, s).delay
                assert with_cap.delay == quiet.decide(0, 1, t, s).delay

    def test_verdict_streams_pinned_across_rate_toggles(self):
        """Regression: each verdict consumes a fixed number of draws, so
        toggling one fault type's rate never shifts the streams another
        fault type sees."""
        base = FaultPlan(seed=9, duplicate_rate=0.4, delay_rate=0.6)
        with_drops = dataclasses.replace(base, drop_rate=0.5)
        coords = [(t, s) for t in range(40) for s in range(3)]
        for t, s in coords:
            a = base.decide(0, 1, t, s)
            b = with_drops.decide(0, 1, t, s)
            assert (a.duplicates, a.delay) == (b.duplicates, b.delay)
        # ... and toggling duplicates never shifts the drop/delay streams.
        no_dups = dataclasses.replace(with_drops, duplicate_rate=0.0)
        for t, s in coords:
            a = with_drops.decide(0, 1, t, s)
            b = no_dups.decide(0, 1, t, s)
            assert (a.drop, a.delay) == (b.drop, b.delay)
        # Something actually fired in each stream, or the test is vacuous.
        fired = [with_drops.decide(0, 1, t, s) for t, s in coords]
        assert any(d.drop for d in fired)
        assert any(d.duplicates for d in fired)
        assert any(d.delay for d in fired)

    def test_duplicate_counts_stay_within_cap(self):
        plan = FaultPlan(seed=2, duplicate_rate=1.0, max_duplicates=3)
        counts = {plan.decide(0, 1, t, 0).duplicates for t in range(200)}
        assert counts <= {1, 2, 3}
        assert len(counts) > 1  # the count draw actually varies


class TestFaultInjector:
    def test_seq_numbers_make_same_tick_sends_independent(self):
        plan = FaultPlan(seed=2, drop_rate=0.5)
        injector = FaultInjector(plan)
        fates = [injector.decide(0, 1, tick=0) for _ in range(64)]
        assert fates == [plan.decide(0, 1, 0, seq) for seq in range(64)]
        assert len({f.drop for f in fates}) == 2  # both outcomes occur

    def test_reset_fires_once_at_or_after_tick(self):
        plan = FaultPlan(resets=(ConnectionReset(tick=5, sender=0, receiver=1),))
        injector = FaultInjector(plan)
        assert not injector.take_reset(0, 1, tick=4)
        assert not injector.take_reset(1, 0, tick=7)  # other direction
        assert injector.take_reset(0, 1, tick=7)
        assert not injector.take_reset(0, 1, tick=8)  # already fired


class TestSimulatorUnderFaults:
    def test_bb_survives_mixed_plan_and_is_reproducible(self, config5):
        params = RunParameters(fault_plan=MIXED_PLAN)
        first = run_byzantine_broadcast(config5, sender=0, value="v", params=params)
        second = run_byzantine_broadcast(config5, sender=0, value="v", params=params)
        assert first.unanimous_decision() == "v"
        assert first.trace.events == second.trace.events
        assert first.correct_words == second.correct_words
        report = verify_under_plan(first, MIXED_PLAN, expected_decision="v")
        assert report.ok, report.summary()

    def test_words_stay_adaptive_shaped_across_seeds(self, config5):
        """Under omission faults confined to one sender the word bill
        must stay O(n(f+1))-shaped with effective f = 1, across seeds."""
        for seed in (0, 11, 23):
            plan = MIXED_PLAN.reseeded(seed)
            result = run_byzantine_broadcast(
                config5, sender=0, value="v", params=RunParameters(fault_plan=plan)
            )
            assert result.unanimous_decision() == "v"
            report = verify_under_plan(result, plan, expected_decision="v")
            assert report.ok, f"seed {seed}: {report.summary()}"

    def test_strong_ba_survives_mixed_plan(self, config5):
        result = run_strong_ba(
            config5,
            {p: 1 for p in config5.processes},
            params=RunParameters(fault_plan=MIXED_PLAN),
        )
        assert result.unanimous_decision() == 1
        report = verify_under_plan(result, MIXED_PLAN, expected_decision=1)
        assert report.ok, report.summary()

    def test_duplicates_do_not_inflate_word_bill(self, config5):
        """The ledger bills protocol sends, not wire copies: a
        duplicate-everything network must not change word counts."""
        noisy = FaultPlan(seed=1, duplicate_rate=1.0, max_duplicates=2)
        clean = run_byzantine_broadcast(config5, sender=0, value="v")
        duplicated = run_byzantine_broadcast(
            config5, sender=0, value="v", params=RunParameters(fault_plan=noisy)
        )
        assert duplicated.unanimous_decision() == "v"
        assert duplicated.correct_words == clean.correct_words

    def test_reorder_plan_generalizes_inbox_order_knob(self, config5):
        """A pure-reorder plan exercises the same within-delta freedom as
        ``inbox_order="random"`` — protocols must not notice either."""
        reorder_only = FaultPlan(seed=3, reorder_rate=1.0)
        result = run_byzantine_broadcast(
            config5, sender=0, value="v", params=RunParameters(fault_plan=reorder_only)
        )
        assert result.unanimous_decision() == "v"


class TestAsyncRunnerUnderFaults:
    def test_bb_survives_mixed_plan_and_is_reproducible(self, config5):
        def go():
            return run(
                run_async(
                    config5,
                    {
                        pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                        for pid in config5.processes
                    },
                    tick_duration=TICK,
                    fault_plan=MIXED_PLAN,
                )
            )

        first, second = go(), go()
        assert first.unanimous_decision() == "v"
        assert first.trace.canonical() == second.trace.canonical()
        assert first.correct_words == second.correct_words
        report = verify_under_plan(first, MIXED_PLAN, expected_decision="v")
        assert report.ok, report.summary()

    def test_delay_must_stay_below_synchrony_bound(self, config5):
        from repro.errors import SchedulerError

        with pytest.raises(SchedulerError):
            run(
                run_async(
                    config5,
                    {},
                    tick_duration=0.02,
                    latency=0.015,
                    fault_plan=FaultPlan(seed=0, max_delay=0.5),
                )
            )


class TestTcpUnderFaults:
    def test_bb_survives_mixed_plan_with_reset_and_is_reproducible(self, config5):
        """The acceptance scenario: nonzero drop+duplicate+reorder rates
        (delays within the synchrony bound) plus a mid-run connection
        reset; the cluster must reach unanimous valid decisions with
        zero safety violations, twice, with identical canonical traces."""
        plan = dataclasses.replace(
            MIXED_PLAN, resets=(ConnectionReset(tick=18, sender=2, receiver=1),)
        )

        def go():
            return run(
                run_over_tcp(
                    config5,
                    {
                        pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                        for pid in config5.processes
                    },
                    tick_duration=TICK,
                    fault_plan=plan,
                    timeout=60.0,
                )
            )

        first, second = go(), go()
        assert first.unanimous_decision() == "v"
        assert second.unanimous_decision() == "v"
        report = verify_under_plan(first, plan, expected_decision="v")
        assert report.ok, report.summary()
        assert first.trace.canonical() == second.trace.canonical()
        assert first.correct_words == second.correct_words

    def test_reconnect_after_mid_run_reset(self, config5):
        """A reset on the fast path's leader→replica link mid-run must be
        survived via reconnect-with-backoff: the frame that hit the dead
        socket is re-sent, so every process still decides."""
        plan = FaultPlan(
            seed=0, resets=(ConnectionReset(tick=1, sender=0, receiver=2),)
        )
        result = run(
            run_over_tcp(
                config5,
                {
                    pid: (lambda ctx: strong_ba_protocol(ctx, 1))
                    for pid in config5.processes
                },
                tick_duration=TICK,
                fault_plan=plan,
                timeout=60.0,
            )
        )
        assert result.unanimous_decision() == 1
        assert result.trace.count("reconnected") >= 1

    def test_run_timeout_raises_and_cleans_up(self, config5):
        """A protocol that never decides must not hang the run (or leak
        sockets — this suite errors on ResourceWarning)."""

        def stuck(ctx):
            while True:
                yield

        for _ in range(2):  # twice: teardown must leave nothing behind
            with pytest.raises(TerminationViolation):
                run(
                    run_over_tcp(
                        config5,
                        {pid: stuck for pid in config5.processes},
                        tick_duration=0.02,
                        timeout=0.3,
                    )
                )

    def test_protocol_crash_still_closes_sockets(self, config5):
        """A protocol task raising mid-run must propagate the error *and*
        release every socket on the way out."""

        def faulty(ctx):
            yield
            raise RuntimeError("boom")

        factories = {
            pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
            for pid in config5.processes
        }
        factories[2] = faulty
        for _ in range(2):
            with pytest.raises(RuntimeError):
                run(
                    run_over_tcp(
                        config5, factories, tick_duration=0.02, timeout=30.0
                    )
                )


class TestTcpBackpressure:
    def test_peer_writer_drains_queue(self):
        """The per-peer writer coroutine must push every queued frame
        through ``write()+drain()`` — no frame may rot in the queue."""
        from repro.asyncnet.tcp import _Peer, _encode_frame, _read_frame

        async def scenario():
            received = []

            async def handle(reader, writer):
                try:
                    hello = await _read_frame(reader)
                    assert hello[0] == "hello"
                    writer.write(_encode_frame(("ack", None)))
                    await writer.drain()
                    while True:
                        received.append(await _read_frame(reader))
                except asyncio.IncompleteReadError:
                    pass
                finally:
                    writer.close()
                    await writer.wait_closed()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            peer = _Peer("127.0.0.1", port, sender_pid=9, epoch=0)
            await peer.connect()
            for i in range(200):
                peer.send({"frame": i})
            while len(received) < 200:
                await asyncio.sleep(0.01)
            assert peer.queue.empty()
            assert [frame[3] for frame in received[:3]] == [
                {"frame": 0}, {"frame": 1}, {"frame": 2}
            ]
            await peer.close()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_sends_to_dead_peer_evaporate(self):
        """A peer that exhausted its reconnect budget is a crashed
        machine: sends are dropped instead of queueing forever."""
        from repro.asyncnet.tcp import _Peer

        async def scenario():
            peer = _Peer("127.0.0.1", 1, sender_pid=9, epoch=0)  # dead port
            with pytest.raises(ConnectionError):
                await peer.connect()
            assert peer.dead
            peer.send("never delivered")
            assert peer.queue.empty()
            await peer.close()

        run(scenario())


class TestReconnectJitter:
    """The per-peer reconnect backoff is scaled by a seeded jitter draw:
    deterministic for a given (seed, sender, peer), de-synchronized
    across peers — no thundering herd after a healed partition, no loss
    of trace reproducibility."""

    @staticmethod
    def _draws(seed, sender_pid, peer_pid, count=8):
        from repro.asyncnet.tcp import JITTER_SPREAD, _Peer

        peer = _Peer(
            "127.0.0.1", 1, sender_pid=sender_pid, epoch=0,
            peer_pid=peer_pid, seed=seed,
        )
        low, high = JITTER_SPREAD
        return [peer._jitter_rng.uniform(low, high) for _ in range(count)]

    def test_same_seed_and_edge_draw_identical_schedules(self):
        assert self._draws(42, 0, 3) == self._draws(42, 0, 3)

    def test_distinct_edges_and_seeds_desynchronize(self):
        baseline = self._draws(42, 0, 3)
        assert self._draws(42, 0, 2) != baseline  # other peer
        assert self._draws(42, 1, 3) != baseline  # other sender
        assert self._draws(43, 0, 3) != baseline  # other run seed

    def test_draws_stay_inside_the_spread(self):
        from repro.asyncnet.tcp import JITTER_SPREAD

        low, high = JITTER_SPREAD
        for draw in self._draws(7, 2, 4, count=200):
            assert low <= draw <= high


class TestReseedDerivation:
    """ISSUE-9 satellite: ``reseeded(seed)`` must re-derive *every*
    seeded sub-schedule from the new seed — per-message fault verdicts,
    inbox shuffles — while carrying the explicit schedules (crashes,
    resets, lossy/slow sets) over unchanged, so a reseeded plan is the
    same fault *mix*, never a partially stale one."""

    def _verdict_grid(self, plan, ticks=32, seqs=2):
        return [
            plan.decide(s, r, tick=t, seq=q)
            for s in (0, 1, 2)
            for r in (0, 1, 2)
            if s != r
            for t in range(ticks)
            for q in range(seqs)
        ]

    def _shuffle_grid(self, plan, ticks=32):
        inbox = envelopes_from([4, 2, 0, 3, 1])
        return [
            [e.sender for e in plan.maybe_shuffle(0, t, inbox)]
            for t in range(ticks)
        ]

    def test_reseed_rederives_verdicts_and_shuffles(self):
        base = MIXED_PLAN
        twin = base.reseeded(base.seed)
        other = base.reseeded(base.seed + 1)
        # Same seed: bit-identical sub-schedules (reseeding is pure).
        assert self._verdict_grid(twin) == self._verdict_grid(base)
        assert self._shuffle_grid(twin) == self._shuffle_grid(base)
        # New seed: both seeded streams actually re-derive.
        assert self._verdict_grid(other) != self._verdict_grid(base)
        assert self._shuffle_grid(other) != self._shuffle_grid(base)

    def test_reseed_is_equivalent_to_fresh_construction(self):
        fresh = dataclasses.replace(MIXED_PLAN, seed=99)
        assert MIXED_PLAN.reseeded(99) == fresh
        assert self._verdict_grid(MIXED_PLAN.reseeded(99)) == self._verdict_grid(fresh)

    def test_reseed_carries_explicit_schedules_unchanged(self):
        from repro.faults.plan import ProcessCrash

        plan = FaultPlan(
            seed=1,
            drop_rate=0.4,
            lossy=frozenset({2}),
            slow=frozenset({3}),
            max_delay=0.25,
            resets=(ConnectionReset(tick=4, sender=0, receiver=1),),
            crashes=(ProcessCrash(pid=2, at_tick=3, restart_tick=6),),
        )
        reseeded = plan.reseeded(7)
        assert reseeded.seed == 7
        assert reseeded.resets == plan.resets
        assert reseeded.crashes == plan.crashes
        assert reseeded.lossy == plan.lossy
        assert reseeded.slow == plan.slow
        assert reseeded.faulty == plan.faulty

    def test_reseeded_runs_diverge_but_stay_safe(self, config5):
        """End-to-end: reseeds of the mixed plan really move the faults
        — the canonical trace stays identical (the protocol is robust
        to the perturbations, which is the point) but the word bill
        shifts with the dropped/duplicated messages — and every reseed
        still verifies."""
        bills = []
        for seed in (11, 12, 13, 14):
            plan = MIXED_PLAN.reseeded(seed)
            result = run_byzantine_broadcast(
                config5, sender=0, value="v",
                params=RunParameters(fault_plan=plan),
            )
            assert result.unanimous_decision() == "v"
            assert verify_under_plan(result, plan, expected_decision="v").ok
            bills.append(result.correct_words)
        assert len(set(bills)) > 1

    def test_soak_derive_instance_threads_one_seed(self):
        """The soak fleet's spec derivation stays coherent: the instance
        seed it draws is the seed its fault plan carries, so replaying
        ``(master_seed, index, profile)`` re-derives the same faults."""
        from repro.soak.plan import PROFILES, derive_instance

        profile = PROFILES["mixed"]
        spec = derive_instance(7, 3, profile)
        again = derive_instance(7, 3, profile)
        assert spec == again
        if spec.plan is not None:
            assert spec.plan.seed == spec.seed
        # A different index re-derives everything, not just the label.
        other = derive_instance(7, 4, profile)
        assert other.seed != spec.seed
