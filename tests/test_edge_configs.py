"""Edge-configuration and determinism tests."""

import pytest

from repro.adversary.strategies import SilentStrategy, apply_strategy
from repro.config import SystemConfig
from repro.core import run_byzantine_broadcast, run_strong_ba, run_weak_ba
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.validity import ExternalValidity
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.scheduler import Simulation

STR_VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


class TestDegenerateDeployments:
    def test_single_process_bb(self):
        config = SystemConfig.with_optimal_resilience(1)
        result = run_byzantine_broadcast(config, sender=0, value="solo")
        assert result.unanimous_decision() == "solo"
        assert result.correct_words == 0  # nothing crosses the network

    def test_single_process_weak_ba(self):
        config = SystemConfig.with_optimal_resilience(1)
        result = run_weak_ba(config, {0: "v"}, STR_VALIDITY)
        assert result.unanimous_decision() == "v"

    def test_single_process_strong_ba(self):
        config = SystemConfig.with_optimal_resilience(1)
        result = run_strong_ba(config, {0: 0})
        assert result.unanimous_decision() == 0

    def test_single_process_fallback(self):
        config = SystemConfig.with_optimal_resilience(1)
        result = run_fallback_ba(config, {0: "x"})
        assert result.unanimous_decision() == "x"

    def test_minimum_fault_tolerant_deployment(self):
        """n=3, t=1: the smallest deployment that tolerates anything."""
        config = SystemConfig.with_optimal_resilience(3)
        assert config.commit_quorum == 3  # ceil((3+1+1)/2)
        from repro.adversary.behaviors import SilentBehavior

        result = run_byzantine_broadcast(
            config, sender=0, value="v", byzantine={2: SilentBehavior()}
        )
        assert result.unanimous_decision() == "v"
        # f=1 = t blocks the quorum of 3 -> fallback, still correct.
        assert result.fallback_was_used()

    def test_zero_tolerance_config(self):
        """n=2, t=0 is legal (no failures tolerated, still must work)."""
        config = SystemConfig(n=2, t=0)
        result = run_byzantine_broadcast(config, sender=0, value="pair")
        assert result.unanimous_decision() == "pair"


class TestDeterminism:
    @pytest.mark.parametrize("f", [0, 2])
    def test_identical_seeds_identical_ledgers(self, f):
        config = SystemConfig.with_optimal_resilience(7)

        def run(seed):
            plan = SilentStrategy(avoid=frozenset({0})).plan(config, f, seed)
            simulation = Simulation(config, seed=seed)
            apply_strategy(
                simulation,
                plan,
                lambda pid: lambda ctx: byzantine_broadcast_protocol(
                    ctx, 0, "v"
                ),
            )
            result = simulation.run()
            return (
                result.decisions,
                [
                    (r.tick, r.sender, r.receiver, r.payload_type, r.words)
                    for r in result.ledger.records
                ],
                [(e.tick, e.pid, e.name) for e in result.trace.events],
            )

        assert run(42) == run(42)

    def test_different_seeds_can_differ(self):
        """Adversary placement is seed-dependent, so runs may differ."""
        config = SystemConfig.with_optimal_resilience(7)

        def corrupted(seed):
            plan = SilentStrategy(avoid=frozenset({0})).plan(config, 3, seed)
            return plan.corrupted

        assert any(corrupted(s) != corrupted(0) for s in range(1, 10))


class TestSessionIsolation:
    def test_sequential_sessions_do_not_interfere(self):
        """Two BB instances back-to-back with different sessions and
        different senders: certificates and messages from the first must
        not satisfy the second."""
        config = SystemConfig.with_optimal_resilience(5)
        simulation = Simulation(config, seed=0)

        def two_rounds(ctx):
            first = yield from byzantine_broadcast_protocol(
                ctx, 0, "first", session="round-1"
            )
            second = yield from byzantine_broadcast_protocol(
                ctx, 1, "second", session="round-2"
            )
            return (first, second)

        for pid in config.processes:
            simulation.add_process(pid, two_rounds)
        result = simulation.run()
        assert result.unanimous_decision() == ("first", "second")
