"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.analysis.fitting
import repro.apps.smr
import repro.config
import repro.crypto.canonical

MODULES = [
    repro.config,
    repro.crypto.canonical,
    repro.analysis.fitting,
    repro.apps.smr,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, (
        f"{module.__name__} should carry doctest examples"
    )
    assert outcome.failed == 0
