"""Exact word-count tests: measured failure-free bills equal the
closed-form polynomials — a message-level accounting audit that slope
checks cannot provide."""

import pytest

from repro.analysis.closed_forms import (
    adaptive_strong_ba_unanimous_words,
    bb_failure_free_words,
    dolev_strong_failure_free_words,
    phase_king_failure_free_words,
    strong_ba_failure_free_words,
    weak_ba_failure_free_words,
)
from repro.config import SystemConfig
from repro.core.adaptive_strong_ba import run_adaptive_strong_ba
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.fallback.dolev_strong import run_dolev_strong
from repro.fallback.phase_king import run_phase_king

NS = (3, 5, 7, 9, 13, 21)
STR_VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


@pytest.mark.parametrize("n", NS)
class TestExactCounts:
    def test_weak_ba(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_weak_ba(
            config, {p: "v" for p in config.processes}, STR_VALIDITY
        )
        assert result.correct_words == weak_ba_failure_free_words(config)

    def test_bb(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_byzantine_broadcast(config, sender=0, value="v")
        assert result.correct_words == bb_failure_free_words(config)

    def test_strong_ba(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_strong_ba(config, {p: 1 for p in config.processes})
        assert result.correct_words == strong_ba_failure_free_words(config)

    def test_dolev_strong(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_dolev_strong(config, sender=0, value="v")
        assert result.correct_words == dolev_strong_failure_free_words(config)

    def test_adaptive_strong_ba(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_adaptive_strong_ba(
            config, {p: "v" for p in config.processes}
        )
        assert (
            result.correct_words == adaptive_strong_ba_unanimous_words(config)
        )


@pytest.mark.parametrize("t", [1, 2, 3])
def test_phase_king_exact(t):
    config = SystemConfig(n=4 * t + 1, t=t)
    result = run_phase_king(config, {p: 1 for p in config.processes})
    assert result.correct_words == phase_king_failure_free_words(config)


def test_formulas_are_the_claimed_orders():
    """Sanity on the formulas themselves: linear vs quadratic vs cubic."""
    small = SystemConfig.with_optimal_resilience(5)
    large = SystemConfig.with_optimal_resilience(41)
    ratio = 41 / 5
    assert bb_failure_free_words(large) / bb_failure_free_words(small) < 2 * ratio
    assert (
        dolev_strong_failure_free_words(large)
        / dolev_strong_failure_free_words(small)
        > ratio**1.7
    )
    pk_small = SystemConfig(n=5, t=1)
    pk_large = SystemConfig(n=41, t=10)
    assert (
        phase_king_failure_free_words(pk_large)
        / phase_king_failure_free_words(pk_small)
        > (41 / 5) ** 2.4
    )
