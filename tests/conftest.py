"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.config import SystemConfig
from repro.crypto.certificates import CryptoSuite


@pytest.fixture(scope="session")
def test_seed() -> int:
    """Suite-wide base seed.  CI's seed-matrix leg re-runs the tier-1
    suite under several values of ``REPRO_TEST_SEED`` to catch
    seed-dependent assumptions; locally it defaults to 7."""
    return int(os.environ.get("REPRO_TEST_SEED", "7"))


def _backend_names() -> list[str]:
    """Backends the suite parametrizes over.  CI's backend-matrix leg
    narrows this with ``REPRO_BACKENDS=cohen`` / ``=civit`` to attribute
    a failure to one stack; locally both run."""
    names = os.environ.get("REPRO_BACKENDS", "cohen,civit")
    return [name.strip() for name in names.split(",") if name.strip()]


@pytest.fixture(params=_backend_names())
def backend(request):
    """One registered protocol backend (the shared Protocol API).  Test
    bodies written against this fixture run verbatim for every stack;
    backend-specific expectations come from the backend's capability
    flags, never from per-backend test copies."""
    import repro.protocols as protocols

    return protocols.get_backend(request.param)


@pytest.fixture
def config7() -> SystemConfig:
    """The workhorse deployment: n=7, t=3 (optimal resilience)."""
    return SystemConfig.with_optimal_resilience(7)


@pytest.fixture
def config5() -> SystemConfig:
    return SystemConfig.with_optimal_resilience(5)


@pytest.fixture
def suite7(config7: SystemConfig) -> CryptoSuite:
    return CryptoSuite(config7, seed=42)
