"""The crash-recovery acceptance suite (ISSUE acceptance criterion).

A weak-BA run with a scheduled crash/restart of one correct process must
recover that process from its WAL and decide the same value — and the
run's message bill must be exactly what deterministic replay of the WALs
predicts.  The same loop is exercised over all three runtimes (tick
scheduler, asyncio, localhost TCP), plus the guardrails: crashes demand
a recovery manager, model-checked runs refuse one, and a WAL whose
highwater marks disagree with the replayed machine is rejected loudly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.asyncnet import run_async
from repro.asyncnet.tcp import run_over_tcp
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba, weak_ba_protocol
from repro.errors import RecoveryError, SchedulerError
from repro.faults import FaultPlan, ProcessCrash
from repro.obs import Observer
from repro.recovery import (
    ProcessWal,
    RecoveryManager,
    load_history,
    replay_wal,
)
from repro.verify.checker import verify_under_plan

CONFIG = SystemConfig(n=4, t=1)
CRASH = ProcessCrash(pid=2, at_tick=3, restart_tick=6)
PLAN = FaultPlan(crashes=(CRASH,))
SEED = 7


def validity_factory(suite, config):
    return ExternalValidity(lambda v: isinstance(v, str))


def run_with_crash(wal_dir, *, observer=None, snapshot_every=None, seed=SEED):
    recovery = RecoveryManager(wal_dir, snapshot_every=snapshot_every)
    inputs = {pid: "v" for pid in CONFIG.processes}
    result = run_weak_ba(
        CONFIG,
        inputs,
        validity_factory,
        seed=seed,
        params=RunParameters(
            seed=seed, fault_plan=PLAN, observer=observer, recovery=recovery
        ),
    )
    return result, recovery


class TestTickWorldAcceptance:
    def test_crashed_process_recovers_and_agrees(self, tmp_path):
        result, recovery = run_with_crash(tmp_path)
        assert result.unanimous_decision() == "v"
        assert result.recovered == frozenset({2})
        assert result.corrupted == frozenset()  # crashed-but-honest
        assert recovery.stats.crashes == 1
        assert recovery.stats.restarts == 1
        # The rejoin replayed exactly the pre-restart prefix.
        (report,) = recovery.stats.reports
        assert report.pid == 2
        assert report.resumed_at_tick == CRASH.restart_tick
        assert report.ticks_replayed == CRASH.restart_tick
        assert report.down_windows == [(CRASH.at_tick, CRASH.restart_tick)]

    def test_crashed_pid_counts_toward_effective_f(self, tmp_path):
        result, _ = run_with_crash(tmp_path)
        assert PLAN.faulty == frozenset({2})
        report = verify_under_plan(result, PLAN)
        assert report.ok, report.summary()

    def test_word_bill_matches_replayed_wals(self, tmp_path):
        """The acceptance bar: the run's message bill and decision are
        exactly what offline replay of the per-process WALs predicts."""
        result, recovery = run_with_crash(tmp_path)
        replayed_sends = 0
        for pid in CONFIG.processes:
            report = replay_wal(tmp_path / f"p{pid}")
            assert report.decided, f"p{pid} did not decide within its WAL"
            assert report.decision == result.decisions[pid]
            # Down-window sends are phantoms: the replayed machine
            # attempts them, but the crashed process never did.
            replayed_sends += report.sends_replayed - report.phantom_sends
        assert replayed_sends == result.ledger.correct_messages

    def test_wal_highwater_marks_match_ledger(self, tmp_path):
        result, _ = run_with_crash(tmp_path)
        for pid in CONFIG.processes:
            history = load_history(tmp_path / f"p{pid}")
            billed = sum(
                1 for r in result.ledger.records if r.sender == pid
            )
            assert history.total_sends() == billed

    def test_observer_counts_recovery_events(self, tmp_path):
        observer = Observer()
        result, _ = run_with_crash(tmp_path, observer=observer)
        registry = observer.registry
        assert registry.counter("recovery.crash").value == 1
        assert registry.counter("recovery.restart").value == 1
        assert (
            registry.counter("recovery.replayed_ticks").value
            == CRASH.restart_tick
        )
        assert result.recovered == frozenset({2})

    def test_same_decision_as_uncrashed_run(self, tmp_path):
        inputs = {pid: "v" for pid in CONFIG.processes}
        baseline = run_weak_ba(
            CONFIG, inputs, validity_factory, seed=SEED,
            params=RunParameters(seed=SEED),
        )
        result, _ = run_with_crash(tmp_path)
        assert result.unanimous_decision() == baseline.unanimous_decision()

    def test_snapshots_bound_live_wal_and_replay_survives(self, tmp_path):
        result, recovery = run_with_crash(tmp_path, snapshot_every=5)
        assert result.unanimous_decision() == "v"
        assert recovery.stats.snapshots > 0
        assert (tmp_path / "p0.snap").exists()
        report = replay_wal(tmp_path / "p0")
        assert report.decided and report.decision == "v"


class TestAsyncRuntimes:
    def factories(self):
        validity = ExternalValidity(lambda v: isinstance(v, str))
        return {
            pid: (lambda ctx, v="v": weak_ba_protocol(ctx, v, validity))
            for pid in CONFIG.processes
        }

    def test_asyncio_runner_recovers(self, tmp_path):
        recovery = RecoveryManager(tmp_path)
        for pid in CONFIG.processes:
            recovery.describe_process(pid, protocol="weak_ba", input="v")
        result = asyncio.run(
            run_async(
                CONFIG, self.factories(), seed=SEED,
                tick_duration=0.02, fault_plan=PLAN, recovery=recovery,
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.recovered == frozenset({2})
        assert recovery.stats.restarts == 1
        report = replay_wal(tmp_path / "p2")
        assert report.decided and report.decision == "v"

    def test_tcp_runner_recovers_with_bumped_epoch(self, tmp_path):
        recovery = RecoveryManager(tmp_path)
        result = asyncio.run(
            run_over_tcp(
                CONFIG, self.factories(), seed=SEED,
                tick_duration=0.05, fault_plan=PLAN, recovery=recovery,
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.recovered == frozenset({2})
        # The rejoined node re-announced itself under a fresh epoch, so
        # its session-layer retransmit state started clean.
        assert recovery.stats.crashes == 1

    def test_asyncio_crashes_require_recovery_manager(self):
        with pytest.raises(SchedulerError, match="RecoveryManager"):
            asyncio.run(
                run_async(
                    CONFIG, self.factories(), seed=SEED, fault_plan=PLAN
                )
            )


class TestGuardrails:
    def test_tick_crashes_require_recovery_manager(self):
        inputs = {pid: "v" for pid in CONFIG.processes}
        with pytest.raises(SchedulerError, match="RecoveryManager"):
            run_weak_ba(
                CONFIG, inputs, validity_factory, seed=SEED,
                params=RunParameters(seed=SEED, fault_plan=PLAN),
            )

    def test_model_checked_runs_refuse_recovery(self, tmp_path):
        from repro.mc.choices import ChoiceSource
        from repro.runtime.scheduler import Simulation

        with pytest.raises(SchedulerError, match="filesystem"):
            Simulation(
                CONFIG,
                seed=0,
                choices=ChoiceSource([]),
                recovery=RecoveryManager(tmp_path),
            )

    def test_replay_divergence_is_loud(self, tmp_path):
        """A WAL whose highwater marks disagree with the deterministic
        machine must be refused, not silently rejoined."""
        result, _ = run_with_crash(tmp_path)
        assert result.unanimous_decision() == "v"
        # Forge an extra sends record: the replayed machine will send
        # fewer messages at that tick than the log claims.
        wal = ProcessWal(tmp_path / "p0")
        wal.log_sends(0, 17)
        wal.close()
        with pytest.raises(RecoveryError, match="replay diverged"):
            replay_wal(tmp_path / "p0")

    def test_offline_replay_needs_deployment_meta(self, tmp_path):
        wal = ProcessWal(tmp_path / "p9")
        wal.log_meta({"protocol": "weak_ba"})  # no n/t/seed/pid
        wal.close()
        with pytest.raises(RecoveryError, match="lacks"):
            replay_wal(tmp_path / "p9")

    def test_offline_replay_needs_known_protocol(self, tmp_path):
        wal = ProcessWal(tmp_path / "p9")
        wal.log_meta({"n": 4, "t": 1, "seed": 0, "pid": 0, "protocol": "hb"})
        wal.close()
        with pytest.raises(RecoveryError, match="no replay builder"):
            replay_wal(tmp_path / "p9")

    def test_crash_window_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="restart tick"):
            FaultPlan(crashes=(ProcessCrash(pid=0, at_tick=5, restart_tick=5),))
        with pytest.raises(ConfigurationError, match="crash tick must be >= 1"):
            FaultPlan(crashes=(ProcessCrash(pid=0, at_tick=0, restart_tick=3),))
        with pytest.raises(ConfigurationError, match="overlapping"):
            FaultPlan(
                crashes=(
                    ProcessCrash(pid=0, at_tick=2, restart_tick=6),
                    ProcessCrash(pid=0, at_tick=4, restart_tick=8),
                )
            )
        # Adjacent windows (restart then crash again the same tick) are
        # legal: restarts are processed before crashes.
        FaultPlan(
            crashes=(
                ProcessCrash(pid=0, at_tick=2, restart_tick=4),
                ProcessCrash(pid=0, at_tick=4, restart_tick=6),
            )
        )
