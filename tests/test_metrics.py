"""Unit tests for the word-complexity model and ledger."""

from dataclasses import dataclass

from repro.metrics.words import (
    WordLedger,
    payload_signatures,
    payload_words,
)


@dataclass(frozen=True)
class TwoWordPayload:
    body: str

    def words(self) -> int:
        return 2


@dataclass(frozen=True)
class CertLikePayload:
    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 6


class TestWordModel:
    def test_default_is_one_word(self):
        assert payload_words("any string") == 1
        assert payload_words(42) == 1

    def test_payload_words_method_respected(self):
        assert payload_words(TwoWordPayload("x")) == 2

    def test_minimum_one_word(self):
        @dataclass(frozen=True)
        class Zero:
            def words(self) -> int:
                return 0

        assert payload_words(Zero()) == 1

    def test_signatures_defaults_to_words(self):
        assert payload_signatures(TwoWordPayload("x")) == 2

    def test_signatures_method_respected(self):
        """A threshold certificate: 1 word, quorum-many signatures."""
        assert payload_words(CertLikePayload()) == 1
        assert payload_signatures(CertLikePayload()) == 6


class TestLedger:
    def _ledger(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=0, receiver=1, payload="a", scope="bb",
            sender_correct=True,
        )
        ledger.record(
            tick=0, sender=0, receiver=2, payload=TwoWordPayload("b"),
            scope="bb/weak_ba", sender_correct=True,
        )
        ledger.record(
            tick=1, sender=3, receiver=1, payload="evil", scope="byzantine",
            sender_correct=False,
        )
        return ledger

    def test_correct_words_excludes_adversary(self):
        ledger = self._ledger()
        assert ledger.correct_words == 3
        assert ledger.total_words == 4

    def test_message_count(self):
        assert self._ledger().correct_messages == 2

    def test_self_sends_ignored(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=1, receiver=1, payload="self", scope="s",
            sender_correct=True,
        )
        assert ledger.correct_words == 0
        assert ledger.records == []

    def test_scope_attribution(self):
        by_scope = self._ledger().words_by_scope()
        assert by_scope == {"bb": 1, "bb/weak_ba": 2}

    def test_scope_attribution_with_adversary(self):
        by_scope = self._ledger().words_by_scope(correct_only=False)
        assert by_scope["byzantine"] == 1

    def test_payload_type_breakdown(self):
        by_type = self._ledger().words_by_payload_type()
        assert by_type == {"str": 1, "TwoWordPayload": 2}

    def test_per_sender_breakdown(self):
        assert self._ledger().words_by_sender() == {0: 3}

    def test_signature_count_uses_contained_signatures(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=0, receiver=1, payload=CertLikePayload(), scope="s",
            sender_correct=True,
        )
        assert ledger.correct_words == 1
        assert ledger.signature_count() == 6
