"""Unit tests for the word-complexity model and ledger."""

from dataclasses import dataclass

import pytest

from repro.errors import WordAccountingError
from repro.metrics.words import (
    WordLedger,
    payload_phase,
    payload_signatures,
    payload_words,
)


@dataclass(frozen=True)
class TwoWordPayload:
    body: str

    def words(self) -> int:
        return 2


@dataclass(frozen=True)
class CertLikePayload:
    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 6


class TestWordModel:
    def test_default_is_one_word(self):
        assert payload_words("any string") == 1
        assert payload_words(42) == 1

    def test_payload_words_method_respected(self):
        assert payload_words(TwoWordPayload("x")) == 2

    def test_zero_word_payload_is_an_error(self):
        """Regression: a ``words()`` result below 1 used to be silently
        clamped up to the minimum, masking broken payload accounting."""

        @dataclass(frozen=True)
        class Zero:
            def words(self) -> int:
                return 0

        @dataclass(frozen=True)
        class Negative:
            def words(self) -> int:
                return -3

        with pytest.raises(WordAccountingError, match="Zero.words"):
            payload_words(Zero())
        with pytest.raises(WordAccountingError, match="-3"):
            payload_words(Negative())

    def test_ledger_refuses_misbehaving_payload(self):
        @dataclass(frozen=True)
        class Broken:
            def words(self) -> int:
                return 0

        ledger = WordLedger()
        with pytest.raises(WordAccountingError):
            ledger.record(
                tick=0, sender=0, receiver=1, payload=Broken(), scope="s",
                sender_correct=True,
            )
        assert ledger.records == []

    def test_non_callable_words_attribute_ignored(self):
        @dataclass(frozen=True)
        class FieldNamedWords:
            words: int = 7  # a data field, not an accounting method

        assert payload_words(FieldNamedWords()) == 1

    def test_unsigned_payloads_carry_zero_signatures(self):
        """Regression: payloads without ``signatures()`` used to count
        one signature per word, inflating signature totals for bare
        strings and plain test payloads."""
        assert payload_signatures(TwoWordPayload("x")) == 0
        assert payload_signatures("any string") == 0
        assert payload_signatures(42) == 0

    def test_signatures_method_respected(self):
        """A threshold certificate: 1 word, quorum-many signatures."""
        assert payload_words(CertLikePayload()) == 1
        assert payload_signatures(CertLikePayload()) == 6

    def test_phase_extracted_when_advertised(self):
        @dataclass(frozen=True)
        class Phased:
            phase: int

            def words(self) -> int:
                return 1

        assert payload_phase(Phased(3)) == 3
        assert payload_phase("no phase") is None

        @dataclass(frozen=True)
        class WeirdPhase:
            phase: str = "not-a-phase"

        assert payload_phase(WeirdPhase()) is None


class TestLedger:
    def _ledger(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=0, receiver=1, payload="a", scope="bb",
            sender_correct=True,
        )
        ledger.record(
            tick=0, sender=0, receiver=2, payload=TwoWordPayload("b"),
            scope="bb/weak_ba", sender_correct=True,
        )
        ledger.record(
            tick=1, sender=3, receiver=1, payload="evil", scope="byzantine",
            sender_correct=False,
        )
        return ledger

    def test_correct_words_excludes_adversary(self):
        ledger = self._ledger()
        assert ledger.correct_words == 3
        assert ledger.total_words == 4

    def test_message_count(self):
        assert self._ledger().correct_messages == 2

    def test_self_sends_ignored(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=1, receiver=1, payload="self", scope="s",
            sender_correct=True,
        )
        assert ledger.correct_words == 0
        assert ledger.records == []

    def test_scope_attribution(self):
        by_scope = self._ledger().words_by_scope()
        assert by_scope == {"bb": 1, "bb/weak_ba": 2}

    def test_scope_attribution_with_adversary(self):
        by_scope = self._ledger().words_by_scope(correct_only=False)
        assert by_scope["byzantine"] == 1

    def test_payload_type_breakdown(self):
        by_type = self._ledger().words_by_payload_type()
        assert by_type == {"str": 1, "TwoWordPayload": 2}

    def test_per_sender_breakdown(self):
        assert self._ledger().words_by_sender() == {0: 3}

    def test_signature_count_uses_contained_signatures(self):
        ledger = WordLedger()
        ledger.record(
            tick=0, sender=0, receiver=1, payload=CertLikePayload(), scope="s",
            sender_correct=True,
        )
        assert ledger.correct_words == 1
        assert ledger.signature_count() == 6

    def test_unsigned_sends_do_not_inflate_signature_totals(self):
        """Regression for the words-as-signatures fallback: a run of
        bare-string sends must contribute zero signatures."""
        assert self._ledger().signature_count() == 0
        assert self._ledger().signature_count(correct_only=False) == 0

    def test_record_returns_the_appended_record(self):
        ledger = WordLedger()
        record = ledger.record(
            tick=2, sender=0, receiver=1, payload="x", scope="s",
            sender_correct=True,
        )
        assert record is ledger.records[-1]
        assert ledger.record(
            tick=2, sender=1, receiver=1, payload="self", scope="s",
            sender_correct=True,
        ) is None

    def test_words_by_phase(self):
        @dataclass(frozen=True)
        class Phased:
            phase: int

            def words(self) -> int:
                return 2

        ledger = WordLedger()
        ledger.record(
            tick=0, sender=0, receiver=1, payload=Phased(1), scope="s",
            sender_correct=True,
        )
        ledger.record(
            tick=1, sender=1, receiver=0, payload=Phased(1), scope="s",
            sender_correct=True,
        )
        ledger.record(
            tick=2, sender=0, receiver=1, payload=Phased(3), scope="s",
            sender_correct=True,
        )
        ledger.record(
            tick=2, sender=2, receiver=1, payload=Phased(3), scope="s",
            sender_correct=False,
        )
        ledger.record(
            tick=3, sender=0, receiver=1, payload="unphased", scope="s",
            sender_correct=True,
        )
        assert ledger.words_by_phase() == {1: 4, 3: 2}
        assert ledger.words_by_phase(correct_only=False) == {1: 4, 3: 4}
