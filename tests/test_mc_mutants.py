"""The mutant harness: every registered protocol mutation is killed.

Each test is a full model-checking loop: explore the mutated scenario
until a counterexample appears, shrink it, build the JSON replay
artifact, re-execute it deterministically, and verify the *unmutated*
twin scenario survives the same exploration exhaustively.  A mutant
that stops being killed means either the protocol grew a redundancy or
the checker lost a property — both worth knowing.
"""

import pytest

from repro.errors import ModelCheckError
from repro.mc.mutants import MUTANTS, kill_mutant
from repro.mc.shrink import load_replay, replay


class TestKillEveryMutant:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_is_killed_with_replayable_artifact(self, name, tmp_path):
        kill = kill_mutant(name, out_dir=tmp_path)
        spec = kill.spec

        # The counterexample exhibits the violation the mutation predicts.
        assert spec.expected_kinds <= set(kill.counterexample.kinds)

        # The shrunk schedule replays deterministically from disk.
        assert kill.artifact_path is not None and kill.artifact_path.exists()
        artifact = load_replay(kill.artifact_path)
        assert tuple(artifact["decisions"]) == kill.shrunk.decisions
        outcome = replay(artifact)  # raises ModelCheckError on divergence
        assert {v.kind for v in outcome.report.violations} >= spec.expected_kinds

        # The unmutated twin exhausts the same space violation-free.
        assert kill.baseline is not None
        assert kill.baseline.complete
        assert kill.baseline.ok

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ModelCheckError, match="unknown mutant"):
            kill_mutant("nonexistent-mutant")

    def test_registry_documents_the_paper_mapping(self):
        for spec in MUTANTS.values():
            assert spec.lemma, spec.name
            assert spec.description, spec.name
            assert spec.expected_kinds, spec.name


class TestKillSummaries:
    def test_summary_mentions_kinds_and_lemma(self, tmp_path):
        kill = kill_mutant("quorum-off-by-one", out_dir=tmp_path)
        summary = kill.summary()
        assert "agreement" in summary
        assert "Lemma 15" in summary
