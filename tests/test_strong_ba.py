"""Tests for the fast binary strong BA (Algorithm 5)."""

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.core.strong_ba import run_strong_ba
from repro.errors import ConfigurationError


class TestStrongUnanimity:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_failure_free(self, n, value):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_strong_ba(config, {p: value for p in config.processes})
        assert result.unanimous_decision() == value
        assert not result.fallback_was_used()

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_unanimous_with_silent_failures(self, f, config7):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: 1 for p in config7.processes if p not in byzantine}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1

    def test_unanimous_with_silent_leader(self, config7):
        """Leader p_0 crashed: the fast path yields nothing and the
        fallback must deliver the unanimous value."""
        byzantine = {0: SilentBehavior()}
        inputs = {p: 0 for p in config7.processes if p != 0}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 0
        assert result.fallback_was_used()


class TestAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_inputs_agree_on_proposed_value(self, seed, config7):
        inputs = {p: p % 2 for p in config7.processes}
        result = run_strong_ba(config7, inputs, seed=seed)
        assert result.unanimous_decision() in (0, 1)

    def test_mixed_inputs_with_failures(self, config7):
        byzantine = {2: SilentBehavior(), 5: SilentBehavior()}
        inputs = {p: p % 2 for p in config7.processes if p not in byzantine}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() in (0, 1)

    def test_garbage_spam(self, config7):
        byzantine = {3: GarbageSpammer()}
        inputs = {p: 1 for p in config7.processes if p != 3}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1


class TestLemma8:
    """Failure-free runs never perform the fallback and cost O(n)."""

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 13])
    def test_no_fallback_when_failure_free(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_strong_ba(config, {p: p % 2 for p in config.processes})
        assert not result.fallback_was_used()

    def test_linear_words_failure_free(self):
        words = {}
        for n in (5, 9, 17, 33):
            config = SystemConfig.with_optimal_resilience(n)
            result = run_strong_ba(config, {p: 1 for p in config.processes})
            words[n] = result.correct_words
        # words/n flat within a small band across a 6.6x range of n.
        assert words[33] / 33 < 1.5 * words[5] / 5

    def test_exactly_four_leader_rounds_failure_free(self, config7):
        result = run_strong_ba(config7, {p: 1 for p in config7.processes})
        # 4 send rounds + final delivery + grace listening.
        assert result.ticks <= 4 + 1 + 4

    def test_quadratic_words_with_failures(self, config7):
        failure_free = run_strong_ba(config7, {p: 1 for p in config7.processes})
        byzantine = {0: SilentBehavior()}
        degraded = run_strong_ba(
            config7,
            {p: 1 for p in config7.processes if p != 0},
            byzantine=byzantine,
        )
        assert degraded.correct_words > 5 * failure_free.correct_words


class TestInputValidation:
    def test_non_binary_input_rejected(self, config7):
        with pytest.raises(ConfigurationError):
            run_strong_ba(config7, {p: 2 for p in config7.processes})
