"""Tests for binary strong BA, parametrized over every backend.

One test body per property: the ``backend`` fixture supplies the stack
(cohen's Algorithm 5, civit's certification views + shared core) and
the backend's capability flags supply the expectations where the papers
genuinely differ — a silent leader forces Algorithm 5 into its fallback
but leaves the civit stack adaptive, so those assertions dispatch on
``backend.silent_leader_forces_fallback`` /
``backend.strong_ba_degrades_quadratically`` instead of being copied
into per-backend files.
"""

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.errors import ConfigurationError


class TestStrongUnanimity:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_failure_free(self, backend, n, value):
        config = SystemConfig.with_optimal_resilience(n)
        result = backend.run_strong_ba(
            config, {p: value for p in config.processes}
        )
        assert result.unanimous_decision() == value
        assert not result.fallback_was_used()

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_unanimous_with_silent_failures(self, backend, f, config7):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: 1 for p in config7.processes if p not in byzantine}
        result = backend.run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1

    def test_unanimous_with_silent_leader(self, backend, config7):
        """Coordinator p_0 crashed.  Algorithm 5's fixed leader makes
        this fatal for the fast path (fallback must deliver); the civit
        stack's rotating certifiers shrug it off (f=1 is below the
        fallback threshold (n-t-1)/2 = 1.5)."""
        byzantine = {0: SilentBehavior()}
        inputs = {p: 0 for p in config7.processes if p != 0}
        result = backend.run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 0
        assert (
            result.fallback_was_used()
            == backend.silent_leader_forces_fallback
        )


class TestAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_inputs_agree_on_proposed_value(self, backend, seed, config7):
        inputs = {p: p % 2 for p in config7.processes}
        result = backend.run_strong_ba(config7, inputs, seed=seed)
        assert result.unanimous_decision() in (0, 1)

    def test_mixed_inputs_with_failures(self, backend, config7):
        byzantine = {2: SilentBehavior(), 5: SilentBehavior()}
        inputs = {p: p % 2 for p in config7.processes if p not in byzantine}
        result = backend.run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() in (0, 1)

    def test_garbage_spam(self, backend, config7):
        byzantine = {3: GarbageSpammer()}
        inputs = {p: 1 for p in config7.processes if p != 3}
        result = backend.run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1


class TestWordComplexity:
    """Lemma 8 for cohen; the adaptive envelope for civit — each stack
    is held to its own published budget (``strong_ba_word_budget``)."""

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 13])
    def test_no_fallback_when_failure_free(self, backend, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = backend.run_strong_ba(
            config, {p: p % 2 for p in config.processes}
        )
        assert not result.fallback_was_used()

    def test_linear_words_failure_free(self, backend):
        words = {}
        for n in (5, 9, 17, 33):
            config = SystemConfig.with_optimal_resilience(n)
            result = backend.run_strong_ba(
                config, {p: 1 for p in config.processes}
            )
            words[n] = result.correct_words
        # words/n flat within a small band across a 6.6x range of n.
        assert words[33] / 33 < 1.5 * words[5] / 5

    def test_failure_free_tick_bound(self, backend, config7):
        result = backend.run_strong_ba(
            config7, {p: 1 for p in config7.processes}
        )
        assert result.ticks <= backend.strong_ba_tick_bound(config7)

    def test_word_bill_with_one_failure(self, backend, config7):
        """The headline differential: one silent process pushes
        Algorithm 5 to its quadratic fallback (the n-of-n decide
        certificate is unreachable), while the civit stack stays inside
        its linear O(n(f+1)) envelope."""
        failure_free = backend.run_strong_ba(
            config7, {p: 1 for p in config7.processes}
        )
        byzantine = {0: SilentBehavior()}
        degraded = backend.run_strong_ba(
            config7,
            {p: 1 for p in config7.processes if p != 0},
            byzantine=byzantine,
        )
        assert degraded.correct_words <= backend.strong_ba_word_budget(
            config7, 1
        )
        if backend.strong_ba_degrades_quadratically:
            assert degraded.correct_words > 5 * failure_free.correct_words
        else:
            assert degraded.correct_words <= 3 * failure_free.correct_words


class TestInputValidation:
    def test_non_binary_input_rejected(self, backend, config7):
        with pytest.raises(ConfigurationError):
            backend.run_strong_ba(config7, {p: 2 for p in config7.processes})
