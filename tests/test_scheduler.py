"""Unit tests for the tick-based synchronous scheduler."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.errors import SchedulerError, TerminationViolation
from repro.runtime.scheduler import Simulation


def idle(ticks):
    """A protocol that sleeps ``ticks`` ticks and returns its pid."""

    def factory(ctx):
        def protocol(ctx):
            for _ in range(ticks):
                yield
            return ctx.pid

        return protocol(ctx)

    return factory


class TestPopulation:
    def test_every_process_must_be_registered(self, config5):
        simulation = Simulation(config5)
        simulation.add_process(0, idle(1))
        with pytest.raises(SchedulerError):
            simulation.run()

    def test_double_registration_rejected(self, config5):
        simulation = Simulation(config5)
        simulation.add_process(0, idle(1))
        with pytest.raises(SchedulerError):
            simulation.add_process(0, idle(1))
        with pytest.raises(SchedulerError):
            simulation.add_byzantine(0, SilentBehavior())

    def test_out_of_range_pid_rejected(self, config5):
        simulation = Simulation(config5)
        with pytest.raises(SchedulerError):
            simulation.add_process(9, idle(1))

    def test_cannot_run_twice(self, config5):
        simulation = Simulation(config5)
        for pid in config5.processes:
            simulation.add_process(pid, idle(0))
        simulation.run()
        with pytest.raises(SchedulerError):
            simulation.run()


class TestDelivery:
    def test_message_delivered_next_tick(self, config5):
        log = {}

        def sender(ctx):
            ctx.send(1, "ping")
            yield
            return None

        def receiver(ctx):
            yield
            log["inbox"] = [(e.sender, e.payload, e.delivered_at) for e in ctx.inbox]
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, sender)
        simulation.add_process(1, receiver)
        for pid in (2, 3, 4):
            simulation.add_process(pid, idle(1))
        simulation.run()
        assert log["inbox"] == [(0, "ping", 1)]

    def test_sender_id_is_stamped_not_spoofable(self, config5):
        """Envelopes carry the true sender — channel authentication."""
        seen = {}

        def byz_like_sender(ctx):
            ctx.send(1, ("fake-from", 4))
            yield
            return None

        def receiver(ctx):
            yield
            seen["senders"] = [e.sender for e in ctx.inbox]
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, byz_like_sender)
        simulation.add_process(1, receiver)
        for pid in (2, 3, 4):
            simulation.add_process(pid, idle(1))
        simulation.run()
        assert seen["senders"] == [0]

    def test_inbox_sorted_by_sender(self, config5):
        seen = {}

        def sender(ctx):
            ctx.send(0, f"from-{ctx.pid}")
            yield
            return None

        def receiver(ctx):
            yield
            seen["order"] = [e.sender for e in ctx.inbox]
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, receiver)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, sender)
        simulation.run()
        assert seen["order"] == [1, 2, 3, 4]

    def test_broadcast_includes_self_delivery(self, config5):
        seen = {}

        def caster(ctx):
            ctx.broadcast("hello")
            yield
            seen["self"] = [e.payload for e in ctx.inbox if e.sender == ctx.pid]
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, caster)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, idle(1))
        simulation.run()
        assert seen["self"] == ["hello"]

    def test_self_delivery_costs_no_words(self, config5):
        def caster(ctx):
            ctx.broadcast("hello")
            yield
            return None

        simulation = Simulation(config5)
        simulation.add_process(0, caster)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, idle(1))
        result = simulation.run()
        assert result.correct_words == config5.n - 1


class TestDecisionsAndTermination:
    def test_return_values_become_decisions(self, config5):
        simulation = Simulation(config5)
        for pid in config5.processes:
            simulation.add_process(pid, idle(pid))
        result = simulation.run()
        assert result.decisions == {p: p for p in config5.processes}
        assert result.halted_at == {p: p for p in config5.processes}

    def test_max_ticks_enforced(self, config5):
        def forever(ctx):
            while True:
                yield

        simulation = Simulation(config5, max_ticks=10)
        for pid in config5.processes:
            simulation.add_process(pid, forever)
        with pytest.raises(TerminationViolation):
            simulation.run()


class TestByzantine:
    def test_byzantine_words_not_counted_as_correct(self, config5):
        class Chatter:
            def step(self, api):
                api.broadcast("spam")

        simulation = Simulation(config5)
        simulation.add_byzantine(0, Chatter())
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, idle(2))
        result = simulation.run()
        assert result.correct_words == 0
        assert result.ledger.total_words > 0
        assert result.f == 1

    def test_rushing_visibility(self, config5):
        """The adversary sees honest tick-T sends to it during tick T."""
        rushed_log = []

        class Rusher:
            def step(self, api):
                rushed_log.extend(
                    (api.now, e.sender, e.payload) for e in api.rushed
                )

        def sender(ctx):
            ctx.send(0, "early")
            yield
            return None

        simulation = Simulation(config5)
        simulation.add_byzantine(0, Rusher())
        simulation.add_process(1, sender)
        for pid in (2, 3, 4):
            simulation.add_process(pid, idle(1))
        simulation.run()
        assert (0, 1, "early") in rushed_log

    def test_scheduled_corruption_silences_process(self, config5):
        """Adaptive adversary: a process crashes mid-protocol."""

        def talker(ctx):
            for _ in range(5):
                ctx.broadcast(f"tick-{ctx.now}")
                yield
            return "done"

        simulation = Simulation(config5)
        for pid in config5.processes:
            simulation.add_process(pid, talker)
        simulation.schedule_corruption(2, 3, SilentBehavior())
        result = simulation.run()
        assert 3 in result.corrupted
        assert 3 not in result.decisions
        # Process 3 sent at ticks 0 and 1 only.
        sends_by_3 = [r for r in result.ledger.records if r.sender == 3]
        assert {r.tick for r in sends_by_3} == {0, 1}
        # Its pre-corruption sends count as correct-process words.
        assert all(r.sender_correct for r in sends_by_3)

    def test_corruption_of_already_byzantine_rejected(self, config5):
        simulation = Simulation(config5)
        simulation.add_byzantine(0, SilentBehavior())
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, idle(1))
        simulation.schedule_corruption(1, 0, SilentBehavior())
        with pytest.raises(SchedulerError):
            simulation.run()


class TestDeterminism:
    def test_same_seed_same_run(self, config5):
        def noisy(ctx):
            for _ in range(3):
                ctx.send(ctx.rng.randrange(config_n), ("r", ctx.rng.random()))
                yield
            return ctx.rng.random()

        config_n = config5.n

        def run(seed):
            simulation = Simulation(config5, seed=seed)
            for pid in config5.processes:
                simulation.add_process(pid, noisy)
            result = simulation.run()
            return (
                result.decisions,
                [(r.tick, r.sender, r.receiver) for r in result.ledger.records],
            )

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestConstructorValidation:
    def test_max_ticks_must_be_positive(self, config5):
        with pytest.raises(SchedulerError, match="max_ticks"):
            Simulation(config5, max_ticks=0)
        with pytest.raises(SchedulerError, match="max_ticks"):
            Simulation(config5, max_ticks=-5)

    def test_seed_must_be_an_int(self, config5):
        with pytest.raises(SchedulerError, match="seed"):
            Simulation(config5, seed="42")
        with pytest.raises(SchedulerError, match="seed"):
            Simulation(config5, seed=1.5)
        # bools are ints in Python but almost certainly a caller bug.
        with pytest.raises(SchedulerError, match="seed"):
            Simulation(config5, seed=True)

    def test_inbox_order_must_be_known(self, config5):
        with pytest.raises(SchedulerError, match="inbox_order"):
            Simulation(config5, inbox_order="fifo")

    def test_choices_excludes_other_nondeterminism_owners(self, config5):
        from repro.faults.plan import FaultPlan
        from repro.mc.choices import CLOSED_SPACE, SeededChoices

        with pytest.raises(SchedulerError, match="exclusive"):
            Simulation(
                config5,
                choices=SeededChoices(CLOSED_SPACE, 0),
                fault_plan=FaultPlan(seed=0, drop_rate=0.1, lossy=frozenset([1])),
            )
        with pytest.raises(SchedulerError, match="exclusive"):
            Simulation(
                config5,
                choices=SeededChoices(CLOSED_SPACE, 0),
                inbox_order="random",
            )
