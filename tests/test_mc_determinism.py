"""Cross-runtime determinism: one seed, one canonical trace.

The model checker's soundness rests on runs being pure functions of
their decision sequences, and the repo's broader determinism promise is
that the tick simulator, the asyncio runner, and a recorded replay all
produce the *same events at the same ticks* (``Trace.canonical``).
These property tests pin both:

* tick-sim, asyncio runner, and a recorded-then-replayed run of the
  same seed yield identical canonical traces;
* a seeded walk through an *open* choice space replays bit-identically
  through :class:`~repro.mc.choices.ScriptedChoices` over its own
  decision log.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncnet import run_async
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.mc.choices import CLOSED_SPACE, ChoiceSpace, ScriptedChoices, SeededChoices
from repro.runtime.scheduler import Simulation

CONFIG = SystemConfig(n=4, t=1)
VALIDITY = ExternalValidity(lambda v: isinstance(v, str))

seeds = st.integers(min_value=0, max_value=2**16)


def _factory(pid):
    return lambda ctx: weak_ba_protocol(ctx, f"v{pid}", VALIDITY, num_phases=1)


def _run_sim(seed, choices=None):
    simulation = Simulation(CONFIG, seed=seed, choices=choices)
    for pid in CONFIG.processes:
        simulation.add_process(pid, _factory(pid))
    return simulation.run()


def _run_asyncio(seed):
    # The suite-standard tick (test_asyncnet.py): shorter ticks make
    # real-time tick boundaries slip under load, landing events one
    # tick late and breaking canonical-trace equality spuriously.
    return asyncio.run(
        run_async(
            CONFIG,
            {pid: _factory(pid) for pid in CONFIG.processes},
            seed=seed,
            tick_duration=0.02,
        )
    )


class TestCrossRuntimeDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(seeds)
    def test_sim_async_and_recorded_replay_agree(self, seed):
        sim = _run_sim(seed)

        # Recorded run: same seed through the choice interface (closed
        # space - the pristine schedule), then replayed from its log.
        recorded = SeededChoices(CLOSED_SPACE, seed)
        recorded_run = _run_sim(seed, choices=recorded)
        replayed = _run_sim(
            seed,
            choices=ScriptedChoices(CLOSED_SPACE, recorded.decisions, strict=True),
        )

        asynced = _run_asyncio(seed)

        reference = sim.trace.canonical()
        assert recorded_run.trace.canonical() == reference
        assert replayed.trace.canonical() == reference
        assert asynced.trace.canonical() == reference
        assert replayed.decisions == sim.decisions == asynced.decisions

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_open_space_walk_replays_bit_identically(self, seed):
        space = ChoiceSpace(reorder=True, perm_cap=6)
        walk = SeededChoices(space, seed)
        walked = _run_sim(seed, choices=walk)

        script = ScriptedChoices(space, walk.decisions, strict=True)
        replayed = _run_sim(seed, choices=script)

        assert replayed.trace.canonical() == walked.trace.canonical()
        assert script.decisions == walk.decisions
        assert script.in_free_region  # the whole script was consumed
