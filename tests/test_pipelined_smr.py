"""Tests for the concurrency combinator and pipelined SMR."""

from repro.adversary.behaviors import SilentBehavior
from repro.apps.clients import ClientWorkload, run_batched_smr
from repro.apps.pipelined import run_pipelined_smr
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.runtime.concurrency import join
from repro.runtime.scheduler import Simulation


def workload(i, replicas):
    return ClientWorkload(
        client=f"c{i}", ops=(("set", f"k{i}", i),), replicas=replicas
    )


class TestJoinCombinator:
    def test_two_bb_instances_in_parallel(self, config5):
        """Two independent BB sessions run concurrently and both decide
        correctly."""

        def protocol(ctx):
            results = yield from join(
                ctx,
                [
                    byzantine_broadcast_protocol(ctx, 0, "alpha", session="a"),
                    byzantine_broadcast_protocol(ctx, 1, "beta", session="b"),
                ],
            )
            return tuple(results)

        simulation = Simulation(config5, seed=0)
        for pid in config5.processes:
            simulation.add_process(pid, protocol)
        result = simulation.run()
        assert result.unanimous_decision() == ("alpha", "beta")

    def test_parallel_no_slower_than_single(self, config5):
        """k joined instances take about as long as one (that is the
        point)."""

        def single(ctx):
            return (
                yield from byzantine_broadcast_protocol(
                    ctx, 0, "v", session="solo"
                )
            )

        def parallel(ctx):
            results = yield from join(
                ctx,
                [
                    byzantine_broadcast_protocol(
                        ctx, s % ctx.config.n, "v", session=f"s{s}"
                    )
                    for s in range(4)
                ],
            )
            return tuple(results)

        def run(factory):
            simulation = Simulation(config5, seed=0)
            for pid in config5.processes:
                simulation.add_process(pid, factory)
            return simulation.run()

        solo = run(single)
        quad = run(parallel)
        assert quad.ticks <= solo.ticks + 2

    def test_scope_attribution_is_not_contaminated(self, config5):
        """Each branch's sends stay attributed to its own scope path
        even though the branches interleave inside one generator."""

        def protocol(ctx):
            def branch(name, to):
                with ctx.scope(name):
                    ctx.send(to, f"from-{name}")
                    yield
                    ctx.send(to, f"again-{name}")
                    yield
                return name

            results = yield from join(
                ctx, [branch("left", 1), branch("right", 2)]
            )
            return tuple(results)

        simulation = Simulation(config5, seed=0)
        simulation.add_process(0, protocol)
        for pid in (1, 2, 3, 4):
            simulation.add_process(pid, lambda ctx: iter(()))
        result = simulation.run()
        scopes = result.ledger.words_by_scope()
        assert scopes == {"left": 2, "right": 2}
        assert result.decisions[0] == ("left", "right")

    def test_branches_of_different_lengths(self, config5):
        def protocol(ctx):
            def short(ctx):
                yield
                return "short"

            def long(ctx):
                for _ in range(5):
                    yield
                return "long"

            return (yield from join(ctx, [short(ctx), long(ctx)]))

        simulation = Simulation(config5, seed=0)
        for pid in config5.processes:
            simulation.add_process(pid, protocol)
        result = simulation.run()
        assert result.unanimous_decision() == ["short", "long"]


class TestPipelinedSmr:
    def test_same_state_as_sequential(self, config5):
        workloads = [workload(i, (i % 5, (i + 1) % 5)) for i in range(8)]
        sequential = run_batched_smr(
            config5, workloads, num_slots=10, batch_size=2
        )
        pipelined = run_pipelined_smr(
            config5, workloads, num_slots=10, window=5, batch_size=2
        )
        assert (
            dict(sequential.unanimous_decision().state)
            == dict(pipelined.unanimous_decision().state)
        )

    def test_latency_speedup_close_to_window(self, config5):
        workloads = [workload(i, (i % 5,)) for i in range(8)]
        sequential = run_batched_smr(
            config5, workloads, num_slots=10, batch_size=2
        )
        pipelined = run_pipelined_smr(
            config5, workloads, num_slots=10, window=5, batch_size=2
        )
        speedup = sequential.ticks / pipelined.ticks
        assert speedup > 3.5  # window 5, minus wave-boundary overhead

    def test_exactly_once_across_same_wave_duplicates(self, config5):
        """A command fanned out to replicas whose sender slots fall in
        the same wave may be proposed twice; it must commit once."""
        workloads = [workload(0, (0, 1, 2, 3, 4))]  # full fan-out
        result = run_pipelined_smr(
            config5, workloads, num_slots=5, window=5, batch_size=2
        )
        outcome = result.unanimous_decision()
        assert [c.key for c in outcome.log] == [("c0", 0)]

    def test_pipelined_with_crashed_replica(self, config5):
        workloads = [workload(i, (i % 5, (i + 2) % 5)) for i in range(6)]
        byzantine = {2: SilentBehavior()}
        result = run_pipelined_smr(
            config5, workloads, num_slots=10, window=5, byzantine=byzantine
        )
        outcome = result.unanimous_decision()
        # All six commands commit (each had a live fan-out target).
        assert len(outcome.log) == 6
        states = {result.decisions[p].state for p in result.correct_pids}
        assert len(states) == 1
