"""Differential conformance suite: both backends, one contract.

The tentpole of the Protocol API refactor: every property here is
asserted for **every registered backend** through the shared ``backend``
fixture, with the backend's own published envelopes
(``strong_ba_word_budget`` / ``strong_ba_tick_bound``) supplying the
numbers where the papers legitimately differ.  Four layers:

* **Table-1 adaptivity grid** — the word-vs-f sweep re-run per backend:
  agreement, validity, termination, fallback regime, and the word bill
  against the backend's envelope at every ``f <= t``.
* **Role × phase fault battery** — crash every protocol role (cohen's
  fixed leader p0, civit's view-1 certifier p1, a pure follower) at
  early/middle/late phase boundaries with WAL rejoin, and require the
  full recovery contract including offline replay, mirroring
  ``tests/test_recovery_battery.py``.
* **Mutant kill-list parity** — the civit mutants must die of exactly
  the violation kinds their cohen twins die of (the kills themselves
  run in ``tests/test_mc_mutants.py``, which parametrizes over the full
  ``MUTANTS`` registry).
* **Cross-backend seeded sweep** — identical seeded ``FaultPlan``s and
  identical exhaustive ``ChoiceSource`` schedule spaces, both backends:
  agreement/validity/termination everywhere, words inside each
  backend's envelope.
"""

from __future__ import annotations

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.config import RunParameters, SystemConfig
from repro.faults import FaultPlan, ProcessCrash
from repro.mc.explore import explore_exhaustive
from repro.mc.mutants import MUTANTS
from repro.mc.scenario import make_scenario
from repro.recovery import RecoveryManager, replay_wal
from repro.verify.checker import verify_under_plan

CONFIG3 = SystemConfig(n=3, t=1)
DOWN_TICKS = 3


class TestAdaptivityGrid:
    """Table 1 re-run per backend: the word-vs-f curve stays inside the
    backend's published envelope, and the fallback fires exactly in the
    regime the backend declares for it."""

    @pytest.mark.parametrize("f", [0, 1, 2, 3])
    def test_strong_ba_envelope(self, backend, config7, f):
        byzantine = {
            config7.n - 1 - i: SilentBehavior() for i in range(f)
        }
        inputs = {p: 1 for p in config7.processes if p not in byzantine}
        result = backend.run_strong_ba(config7, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == 1  # agreement + validity
        assert not result.truncated  # termination
        assert result.correct_words <= backend.strong_ba_word_budget(
            config7, f
        )
        if backend.strong_ba_degrades_quadratically:
            expect_fallback = f > 0
        else:
            expect_fallback = f >= config7.fallback_failure_threshold
        assert result.fallback_was_used() == expect_fallback
        if f == 0:
            assert result.ticks <= backend.strong_ba_tick_bound(config7)

    @pytest.mark.parametrize("f", [0, 1, 2])
    def test_adaptive_strong_ba_grid(self, backend, config7, f):
        byzantine = {
            config7.n - 1 - i: SilentBehavior() for i in range(f)
        }
        inputs = {p: "V" for p in config7.processes if p not in byzantine}
        result = backend.run_adaptive_strong_ba(
            config7, inputs, byzantine=byzantine
        )
        assert result.unanimous_decision() == "V"
        assert not result.truncated

    def test_linear_at_one_failure_iff_declared(self, backend):
        """The headline differential, stated as a conformance fact: at
        f=1 a quadratically-degrading backend's words-per-process must
        grow with n, while an adaptive backend's must stay flat."""
        per_process = {}
        for n in (7, 11):
            config = SystemConfig.with_optimal_resilience(n)
            byzantine = {n - 1: SilentBehavior()}
            inputs = {p: 1 for p in config.processes if p not in byzantine}
            result = backend.run_strong_ba(
                config, inputs, byzantine=byzantine
            )
            per_process[n] = result.correct_words / n
        ratio = per_process[11] / per_process[7]
        if backend.strong_ba_degrades_quadratically:
            assert ratio > 1.5
        else:
            assert ratio < 1.3


class TestRoleFaultBattery:
    """Crash each role at early/middle/late boundaries; WAL rejoin must
    restore the full contract.  Roles at n=3: p0 is cohen's fixed
    leader, p1 is civit's view-1 certifier *and* the shared core's
    phase-1 leader, p2 never coordinates anything."""

    ROLES = (0, 1, 2)

    def _boundaries(self, backend):
        bound = backend.strong_ba_tick_bound(CONFIG3)
        return (1, max(2, bound // 3), max(3, 2 * bound // 3))

    @pytest.mark.parametrize("pid", ROLES)
    def test_role_crash_with_rejoin(self, backend, pid, tmp_path, test_seed):
        for at_tick in self._boundaries(backend):
            wal_dir = tmp_path / f"wal-{pid}-{at_tick}"
            plan = FaultPlan(
                crashes=(
                    ProcessCrash(
                        pid=pid,
                        at_tick=at_tick,
                        restart_tick=at_tick + DOWN_TICKS,
                    ),
                ),
                seed=test_seed,
            )
            recovery = RecoveryManager(wal_dir)
            result = backend.run_strong_ba(
                CONFIG3,
                {p: 1 for p in CONFIG3.processes},
                seed=test_seed,
                params=RunParameters(
                    seed=test_seed, fault_plan=plan, recovery=recovery
                ),
            )
            decisions = set(map(repr, result.decisions.values()))
            assert decisions == {"1"}, (backend.name, pid, at_tick)
            assert result.recovered == frozenset({pid})
            report = verify_under_plan(result, plan)
            assert report.ok, report.summary()
            # The WAL alone reproduces the crashed process's decision —
            # through the registry-dispatched replay builder.
            offline = replay_wal(wal_dir / f"p{pid}")
            assert offline.decided and repr(offline.decision) == "1"


class TestMutantKillParity:
    """The civit mutants mirror the cohen kill list: same lemma
    ablation, same expected violation kind.  (The kills themselves run
    in test_mc_mutants.py over the whole registry.)"""

    PAIRS = (
        ("quorum-off-by-one", "civit-quorum-off-by-one"),
        ("fallback-echo-skipped", "civit-fallback-echo-skipped"),
        ("non-silent-leaders", "civit-non-silent-leaders"),
    )

    @pytest.mark.parametrize("cohen_name,civit_name", PAIRS)
    def test_expected_kinds_match(self, cohen_name, civit_name):
        assert MUTANTS[cohen_name].expected_kinds == MUTANTS[
            civit_name
        ].expected_kinds

    def test_civit_mutants_run_in_the_civit_scenario(self):
        import repro.protocols as protocols

        civit = protocols.get_backend("civit")
        for _, civit_name in self.PAIRS:
            assert MUTANTS[civit_name].scenario == civit.mc_strong_scenario

    def test_cohen_mutants_scenario_unchanged(self):
        for cohen_name, _ in self.PAIRS:
            assert MUTANTS[cohen_name].scenario == "weak-ba"


class TestCrossBackendSweep:
    """Identical adversity, every backend: the differential heart of
    the suite."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_fault_plans(self, backend, seed, tmp_path):
        """One seeded FaultPlan (message chaos + one crash), run under
        each backend: same plan object semantics, backend-specific
        envelope."""
        config = SystemConfig.with_optimal_resilience(5)
        plan = FaultPlan(
            seed=seed,
            duplicate_rate=0.2,
            delay_rate=0.2,
            reorder_rate=0.3,
            crashes=(ProcessCrash(pid=4, at_tick=2, restart_tick=5),),
        )
        recovery = RecoveryManager(tmp_path / f"wal-{seed}")
        result = backend.run_strong_ba(
            config,
            {p: 1 for p in config.processes},
            seed=seed,
            params=RunParameters(
                seed=seed, fault_plan=plan, recovery=recovery
            ),
        )
        assert result.unanimous_decision() == 1
        assert not result.truncated
        report = verify_under_plan(result, plan)
        assert report.ok, (backend.name, seed, report.summary())
        effective_f = len(frozenset(result.corrupted) | plan.faulty)
        assert result.correct_words <= backend.strong_ba_word_budget(
            config, effective_f
        )

    def test_identical_choice_schedules(self, backend):
        """Exhaustively explore the backend's strong-BA scenario over
        the same ChoiceSource space (silenced-identity × corruption
        tick, deterministic delivery): every schedule must verify for
        every backend."""
        scenario = make_scenario(
            backend.mc_strong_scenario,
            n=4,
            num_phases=1,
            adversary="choose-silent",
            corrupt_ticks=[0, 2],
            reorder=False,
        )
        outcome = explore_exhaustive(scenario, max_runs=64)
        assert outcome.complete
        assert outcome.ok, outcome.counterexamples[0].summary
