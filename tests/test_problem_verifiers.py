"""Tests for the Definition 1/2/3 problem verifiers and Monte-Carlo runner."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.montecarlo import (
    expected_cost_curve,
    run_probabilistic_trials,
)
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.verify import (
    verify_byzantine_broadcast,
    verify_strong_ba,
    verify_weak_ba,
)


class TestDefinition1:
    def test_correct_sender_run_passes(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        report = verify_byzantine_broadcast(result, sender=0, sender_value="v")
        assert report.ok, report.summary()

    def test_correct_sender_requires_value(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        with pytest.raises(ValueError):
            verify_byzantine_broadcast(result, sender=0)

    def test_byzantine_sender_needs_agreement_only(self, config7):
        result = run_byzantine_broadcast(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        assert verify_byzantine_broadcast(result, sender=0).ok

    def test_wrong_sender_value_caught(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        report = verify_byzantine_broadcast(result, sender=0, sender_value="w")
        assert not report.ok


class TestDefinition2:
    def test_unanimous_inputs_checked(self, config7):
        inputs = {p: 1 for p in config7.processes}
        result = run_strong_ba(config7, inputs)
        assert verify_strong_ba(result, inputs).ok

    def test_mixed_inputs_only_agreement(self, config7):
        inputs = {p: p % 2 for p in config7.processes}
        result = run_strong_ba(config7, inputs)
        assert verify_strong_ba(result, inputs).ok

    def test_byzantine_inputs_excluded_from_unanimity(self, config7):
        """Corrupted processes' 'inputs' must not break the unanimity
        requirement computation."""
        byzantine = {3: SilentBehavior()}
        inputs = {p: 1 for p in config7.processes if p != 3}
        result = run_strong_ba(config7, inputs, byzantine=byzantine)
        report = verify_strong_ba(result, {**inputs, 3: 0})
        assert report.ok, report.summary()


class TestDefinition3:
    VALIDATE = staticmethod(lambda v: isinstance(v, str))

    def test_single_valid_value_must_win(self, config7):
        result = run_weak_ba(
            config7,
            {p: "only" for p in config7.processes},
            lambda suite, cfg: ExternalValidity(self.VALIDATE),
        )
        report = verify_weak_ba(result, self.VALIDATE, ["only"])
        assert report.ok, report.summary()

    def test_bottom_allowed_with_multiple_valid_values(self, config7):
        inputs = {p: f"v{p % 2}" for p in config7.processes}
        result = run_weak_ba(
            config7, inputs, lambda suite, cfg: ExternalValidity(self.VALIDATE)
        )
        report = verify_weak_ba(result, self.VALIDATE, set(inputs.values()))
        assert report.ok, report.summary()


class TestMonteCarlo:
    def test_zero_probability_is_deterministic(self, config5):
        dist = run_probabilistic_trials(
            config5,
            lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
            failure_probability=0.0,
            trials=3,
            protected=frozenset({0}),
        )
        assert dist.mean == dist.median == dist.p95 == dist.maximum
        assert dist.fallback_rate == 0.0
        assert dist.disagreements == 0

    def test_high_probability_raises_cost(self, config5):
        curve = expected_cost_curve(
            config5,
            lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
            probabilities=(0.0, 0.5),
            trials=8,
            protected=frozenset({0}),
        )
        assert curve[0].mean < curve[1].mean
        assert all(d.disagreements == 0 for d in curve)

    def test_failures_capped_at_t(self, config5):
        dist = run_probabilistic_trials(
            config5,
            lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
            failure_probability=1.0,  # everyone wants to crash...
            trials=3,
            protected=frozenset({0}),
        )
        assert dist.disagreements == 0  # ...but only t are allowed to


def self_validate(v):
    return isinstance(v, str)
