"""Unit tests for envelopes, the message pool, traces, and run results."""

import pytest

from repro.errors import AgreementViolation
from repro.metrics.words import WordLedger
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool
from repro.runtime.result import RunResult
from repro.runtime.trace import Trace


def env(sender=0, receiver=1, payload="x", tick=0):
    return Envelope(
        sender=sender,
        receiver=receiver,
        payload=payload,
        sent_at=tick,
        delivered_at=tick + 1,
    )


class TestMessagePool:
    def test_take_removes_matches(self):
        pool = MessagePool()
        pool.extend([env(payload="a"), env(payload="b"), env(payload="a")])
        taken = pool.take(lambda e: e.payload == "a")
        assert [e.payload for e in taken] == ["a", "a"]
        assert len(pool) == 1

    def test_take_payloads_by_type(self):
        pool = MessagePool()
        pool.extend([env(payload=1), env(payload="s"), env(payload=2)])
        taken = pool.take_payloads(int)
        assert [e.payload for e in taken] == [1, 2]
        assert [e.payload for e in pool] == ["s"]

    def test_take_payloads_with_predicate(self):
        pool = MessagePool()
        pool.extend([env(payload=1, sender=0), env(payload=2, sender=3)])
        taken = pool.take_payloads(int, lambda e: e.sender == 3)
        assert [e.payload for e in taken] == [2]

    def test_peek_does_not_remove(self):
        pool = MessagePool()
        pool.extend([env(payload="a")])
        assert len(pool.peek(lambda e: True)) == 1
        assert len(pool) == 1

    def test_preserves_order(self):
        pool = MessagePool()
        pool.extend([env(payload=i) for i in range(5)])
        assert [e.payload for e in pool.take(lambda e: True)] == [0, 1, 2, 3, 4]


class TestTrace:
    def test_emit_and_query(self):
        trace = Trace()
        trace.emit(tick=1, pid=0, scope="top", name="decided", value=3)
        trace.emit(tick=2, pid=1, scope="top/fb", name="decided", value=3)
        trace.emit(tick=2, pid=1, scope="top/fb", name="other")
        assert trace.count("decided") == 2
        assert trace.any("other")
        assert not trace.any("missing")
        assert len(list(trace.by_pid(1))) == 2
        assert trace.scopes() == {"top", "top/fb"}

    def test_event_data_access(self):
        trace = Trace()
        trace.emit(tick=0, pid=0, scope="s", name="e", a=1, b="x")
        event = trace.events[0]
        assert event.get("a") == 1
        assert event.get("b") == "x"
        assert event.get("missing", "d") == "d"


class TestRunResult:
    def _result(self, config5, decisions, corrupted=frozenset()):
        return RunResult(
            config=config5,
            decisions=decisions,
            corrupted=frozenset(corrupted),
            ledger=WordLedger(),
            trace=Trace(),
            ticks=10,
        )

    def test_unanimous(self, config5):
        result = self._result(config5, {p: "v" for p in range(5)})
        assert result.unanimous_decision() == "v"

    def test_disagreement_raises(self, config5):
        decisions = {p: "v" for p in range(5)}
        decisions[3] = "w"
        result = self._result(config5, decisions)
        with pytest.raises(AgreementViolation):
            result.unanimous_decision()

    def test_missing_decision_raises(self, config5):
        result = self._result(config5, {p: "v" for p in range(4)})
        with pytest.raises(AgreementViolation):
            result.unanimous_decision()

    def test_corrupted_excluded_from_agreement(self, config5):
        decisions = {p: "v" for p in range(4)}
        result = self._result(config5, decisions, corrupted={4})
        assert result.unanimous_decision() == "v"
        assert result.f == 1
        assert result.correct_pids == [0, 1, 2, 3]

    def test_fallback_flag_reads_trace(self, config5):
        result = self._result(config5, {p: "v" for p in range(5)})
        assert not result.fallback_was_used()
        result.trace.emit(
            tick=3, pid=0, scope="weak_ba/fallback", name="fallback_started"
        )
        assert result.fallback_was_used()
