"""Tests for the condensed reproduction-report generator."""

from repro.analysis.report import ClaimResult, collect_claims, render_report
from repro.cli import main


class TestCollect:
    def test_all_claims_reproduce(self):
        claims = collect_claims(ns=(5, 9, 13))
        assert len(claims) >= 8
        failing = [c.claim for c in claims if not c.holds]
        assert not failing, f"claims not reproduced: {failing}"

    def test_claims_cover_every_table1_row(self):
        claims = collect_claims(ns=(5, 9))
        text = " ".join(c.claim for c in claims)
        for needle in ("BB", "weak BA", "strong BA", "A_fallback", "Lemma 6",
                       "Lemma 8", "Dolev-Strong"):
            assert needle in text


class TestRender:
    def test_markdown_structure(self):
        claims = [
            ClaimResult("c1", "p1", "m1", True),
            ClaimResult("c2", "p2", "m2", False),
        ]
        text = render_report(claims)
        assert text.startswith("# Reproduction report")
        assert "| c1 | p1 | m1 | ✓ reproduced |" in text
        assert "✗ MISMATCH" in text
        assert "**1/2 claims reproduced.**" in text


class TestCliIntegration:
    def test_report_command_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "--ns", "5", "9", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()
        assert "reproduced" in capsys.readouterr().out
