"""Tests for the localhost-TCP transport."""

import asyncio

import pytest

from repro.asyncnet.tcp import run_over_tcp
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import strong_ba_protocol
from repro.errors import SchedulerError

TICK = 0.03


def run(coro):
    return asyncio.run(coro)


class TestTcpTransport:
    def test_bb_over_sockets(self, config5):
        result = run(
            run_over_tcp(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                },
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == "v"

    def test_word_bill_matches_simulator(self, config5):
        """The transport changes; the paper's complexity measure does
        not.  A generous synchrony bound keeps the round clock honest
        even when the test machine is under load; one retry guards
        against pathological scheduler stalls."""
        simulated = run_byzantine_broadcast(config5, sender=0, value="v")
        for attempt, tick in enumerate((0.08, 0.15)):
            over_tcp = run(
                run_over_tcp(
                    config5,
                    {
                        pid: (
                            lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
                        )
                        for pid in config5.processes
                    },
                    tick_duration=tick,
                )
            )
            if over_tcp.correct_words == simulated.correct_words:
                break
        assert over_tcp.correct_words == simulated.correct_words
        assert over_tcp.unanimous_decision() == "v"

    def test_strong_ba_over_sockets(self, config5):
        result = run(
            run_over_tcp(
                config5,
                {
                    pid: (lambda ctx: strong_ba_protocol(ctx, 1))
                    for pid in config5.processes
                },
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == 1

    def test_crashed_machine(self, config5):
        """A crashed process has no TCP node; sends to it evaporate and
        the survivors still agree."""
        result = run(
            run_over_tcp(
                config5,
                {
                    pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                    for pid in config5.processes
                    if pid != 3
                },
                crashed=frozenset({3}),
                tick_duration=TICK,
            )
        )
        assert result.unanimous_decision() == "v"
        assert result.corrupted == frozenset({3})

    def test_missing_factory_rejected(self, config5):
        with pytest.raises(SchedulerError):
            run(
                run_over_tcp(
                    config5,
                    {0: lambda ctx: strong_ba_protocol(ctx, 1)},
                    tick_duration=TICK,
                )
            )
