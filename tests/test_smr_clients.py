"""Tests for the batched, client-fed SMR layer (exactly-once commits)."""

from repro.adversary.behaviors import SilentBehavior
from repro.apps.clients import (
    ClientWorkload,
    Command,
    assign_queues,
    run_batched_smr,
)
from repro.config import SystemConfig


def w(client, ops, replicas):
    return ClientWorkload(client=client, ops=tuple(ops), replicas=tuple(replicas))


class TestQueueAssignment:
    def test_fan_out_duplicates_to_all_targets(self, config5):
        workload = w("alice", [("set", "a", 1)], replicas=(0, 1, 2))
        queues = assign_queues([workload], config5)
        command = Command("alice", 0, ("set", "a", 1))
        assert queues[0] == [command]
        assert queues[1] == [command]
        assert queues[2] == [command]
        assert queues[3] == []

    def test_sequence_numbers(self):
        workload = w("bob", [("set", "x", 1), ("set", "x", 2)], replicas=(0,))
        commands = workload.commands()
        assert [c.seq for c in commands] == [0, 1]
        assert commands[0].key == ("bob", 0)


class TestExactlyOnce:
    def test_fanned_out_commands_commit_once(self, config5):
        """A command submitted to three replicas appears once in the log."""
        workloads = [
            w("alice", [("set", "a", 1)], replicas=(0, 1, 2)),
            w("bob", [("set", "b", 2)], replicas=(1, 2, 3)),
        ]
        result = run_batched_smr(config5, workloads, num_slots=5)
        outcome = result.unanimous_decision()
        keys = [c.key for c in outcome.log]
        assert sorted(keys) == [("alice", 0), ("bob", 0)]
        assert dict(outcome.state) == {"a": 1, "b": 2}

    def test_batching_packs_multiple_commands_per_slot(self, config5):
        workloads = [
            w("alice", [("set", f"k{i}", i) for i in range(4)], replicas=(0,)),
        ]
        result = run_batched_smr(
            config5, workloads, num_slots=5, batch_size=4
        )
        outcome = result.unanimous_decision()
        assert len(outcome.log) == 4  # all four commands
        assert len(dict(outcome.state)) == 4
        # All four fit into replica 0's single sender slot.
        batches = [
            e.get("size") for e in result.trace.named("smr_committed_batch")
        ]
        assert max(batches) == 4

    def test_batch_size_limits_slot_payload(self, config5):
        workloads = [
            w("alice", [("set", f"k{i}", i) for i in range(6)],
              replicas=(0, 1, 2, 3, 4)),
        ]
        result = run_batched_smr(
            config5, workloads, num_slots=5, batch_size=2
        )
        outcome = result.unanimous_decision()
        assert len(outcome.log) == 6  # 3 slots x 2 commands
        keys = [c.key for c in outcome.log]
        assert len(set(keys)) == 6  # no duplicates despite full fan-out


class TestFaultTolerance:
    def test_crashed_home_replica_covered_by_fan_out(self, config5):
        """Alice's home replica is dead, but she also submitted to two
        others — her command still commits."""
        workloads = [
            w("alice", [("set", "a", 1)], replicas=(2, 3, 4)),
        ]
        byzantine = {2: SilentBehavior()}
        result = run_batched_smr(
            config5, workloads, num_slots=5, byzantine=byzantine
        )
        outcome = result.unanimous_decision()
        assert dict(outcome.state) == {"a": 1}

    def test_single_home_replica_crashed_loses_command(self, config5):
        """The converse: no fan-out and a dead home replica means the
        command never commits — motivation for submitting to several."""
        workloads = [w("alice", [("set", "a", 1)], replicas=(2,))]
        byzantine = {2: SilentBehavior()}
        result = run_batched_smr(
            config5, workloads, num_slots=5, byzantine=byzantine
        )
        outcome = result.unanimous_decision()
        assert outcome.log == ()

    def test_states_identical_under_failures(self):
        config = SystemConfig.with_optimal_resilience(5)
        workloads = [
            w("alice", [("set", "a", 1), ("del", "missing")], replicas=(0, 1)),
            w("bob", [("set", "b", 2)], replicas=(3, 4)),
        ]
        byzantine = {1: SilentBehavior(), 4: SilentBehavior()}
        result = run_batched_smr(
            config, workloads, num_slots=5, byzantine=byzantine
        )
        outcome = result.unanimous_decision()
        states = {result.decisions[p].state for p in result.correct_pids}
        assert len(states) == 1
        assert dict(outcome.state) == {"a": 1, "b": 2}
