"""Unit tests for the choice-point substrate (``repro.mc.choices``)."""

import pytest

from repro.errors import ModelCheckError
from repro.mc.choices import (
    CLOSED_SPACE,
    ChoicePoint,
    ChoiceSpace,
    ChoiceSource,
    ScriptedChoices,
    SeededChoices,
    _distinct_orderings,
)
from repro.runtime.envelope import Envelope


def _envelope(sender, payload="m", receiver=0, tick=1):
    return Envelope(
        sender=sender,
        receiver=receiver,
        payload=payload,
        sent_at=tick - 1,
        delivered_at=tick,
    )


class TestChoiceSpace:
    def test_validation(self):
        with pytest.raises(ModelCheckError):
            ChoiceSpace(perm_cap=0)
        with pytest.raises(ModelCheckError):
            ChoiceSpace(drop_budget=-1)
        with pytest.raises(ModelCheckError):
            ChoiceSpace(max_duplicates=-1)
        with pytest.raises(ModelCheckError):
            ChoiceSpace(delay_levels=0)

    def test_drop_eligibility_filters(self):
        space = ChoiceSpace(
            drop_budget=1,
            droppable_senders=frozenset([2]),
            droppable_payloads=frozenset(["str"]),
        )
        assert space.drop_eligible(2, "payload")
        assert not space.drop_eligible(1, "payload")  # wrong sender
        assert not space.drop_eligible(2, 42)  # wrong payload type
        assert not CLOSED_SPACE.drop_eligible(2, "payload")  # budget 0


class TestChooseSemantics:
    def test_single_option_points_are_not_logged(self):
        source = SeededChoices(CLOSED_SPACE, seed=0)
        assert source.choose("corrupt", (), 1) == 0
        assert source.log == []

    def test_zero_options_rejected(self):
        source = SeededChoices(CLOSED_SPACE, seed=0)
        with pytest.raises(ModelCheckError):
            source.choose("corrupt", (), 0)

    def test_out_of_range_pick_rejected(self):
        class Bad(ChoiceSource):
            def _pick(self, point):
                return point.options  # one past the end

        with pytest.raises(ModelCheckError):
            Bad(CLOSED_SPACE).choose("corrupt", (), 3)

    def test_log_records_point_and_choice(self):
        source = ScriptedChoices(CLOSED_SPACE, [2])
        assert source.choose("corrupt", (7,), 4) == 2
        (entry,) = source.log
        assert entry.point == ChoicePoint(kind="corrupt", coords=(7,), options=4)
        assert entry.chosen == 2
        assert source.decisions == [2]


class TestScriptedChoices:
    def test_non_strict_defaults_to_canonical_past_end(self):
        source = ScriptedChoices(CLOSED_SPACE, [1])
        assert not source.in_free_region
        assert source.choose("a", (), 3) == 1
        assert source.in_free_region
        assert source.choose("b", (), 3) == 0

    def test_strict_raises_when_exhausted(self):
        source = ScriptedChoices(CLOSED_SPACE, [], strict=True)
        with pytest.raises(ModelCheckError):
            source.choose("a", (), 2)

    def test_entry_out_of_range_raises_even_non_strict(self):
        source = ScriptedChoices(CLOSED_SPACE, [5])
        with pytest.raises(ModelCheckError):
            source.choose("a", (), 3)

    def test_seeded_walk_replays_through_script(self):
        space = ChoiceSpace(reorder=True, perm_cap=4)
        seeded = SeededChoices(space, seed=9)
        answers = [seeded.choose("order", (pid, 1), 4) for pid in range(6)]
        scripted = ScriptedChoices(space, seeded.decisions, strict=True)
        replayed = [scripted.choose("order", (pid, 1), 4) for pid in range(6)]
        assert replayed == answers
        assert scripted.log == seeded.log


class TestFaultDecisions:
    def test_closed_space_is_the_identity_verdict(self):
        source = SeededChoices(CLOSED_SPACE, seed=3)
        verdict = source.fault_decision(1, 2, tick=4, seq=0, payload="m")
        assert not verdict.drop
        assert verdict.duplicates == 0
        assert verdict.delay == 0.0
        assert source.log == []

    def test_drop_budget_caps_total_drops(self):
        space = ChoiceSpace(reorder=False, drop_budget=1)
        source = ScriptedChoices(space, [1, 1])  # try to drop twice
        first = source.fault_decision(1, 2, tick=0, seq=0, payload="m")
        assert first.drop and source.drops_used == 1
        # Budget exhausted: the second send offers no drop point at all.
        second = source.fault_decision(1, 3, tick=0, seq=1, payload="m")
        assert not second.drop
        assert source.consumed == 1


class TestDistinctOrderings:
    def test_identity_ordering_first(self):
        envelopes = [_envelope(1), _envelope(2), _envelope(3)]
        orderings = _distinct_orderings(envelopes, cap=6)
        assert len(orderings) == 6
        assert orderings[0] == tuple(envelopes)

    def test_duplicate_envelopes_do_not_inflate_options(self):
        dup = _envelope(1)
        envelopes = [dup, dup, _envelope(2)]
        orderings = _distinct_orderings(envelopes, cap=6)
        # 3! = 6 raw permutations, but swapping the two equal copies is
        # indistinguishable: only 3 distinct orderings remain.
        assert len(orderings) == 3

    def test_cap_truncates(self):
        envelopes = [_envelope(1), _envelope(2), _envelope(3)]
        assert len(_distinct_orderings(envelopes, cap=2)) == 2

    def test_order_inbox_identity_when_closed(self):
        source = SeededChoices(CLOSED_SPACE, seed=0)
        envelopes = [_envelope(2), _envelope(1)]
        assert source.order_inbox(0, 1, envelopes) == envelopes
        assert source.log == []
