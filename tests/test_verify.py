"""Tests for the post-run invariant verifier."""

from repro.adversary.behaviors import SilentBehavior
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.core.values import BOTTOM, UNDECIDED
from repro.metrics.words import WordLedger
from repro.runtime.result import RunResult
from repro.runtime.trace import Trace
from repro.verify import (
    adaptive_word_budget,
    quadratic_word_budget,
    verify_run,
)


def synthetic_result(config5, decisions, corrupted=frozenset(), trace=None):
    return RunResult(
        config=config5,
        decisions=decisions,
        corrupted=frozenset(corrupted),
        ledger=WordLedger(),
        trace=trace or Trace(),
        ticks=5,
    )


class TestAgainstRealRuns:
    def test_clean_bb_run_verifies(self, config7):
        result = run_byzantine_broadcast(config7, sender=0, value="v")
        report = verify_run(
            result,
            expected_decision="v",
            word_budget=adaptive_word_budget(),
            check_lemma6=True,
        )
        assert report.ok, report.summary()
        assert "lemma6" in report.checked

    def test_weak_ba_unique_validity_accepts_bottom(self, config7):
        inputs = {p: f"v{p % 2}" for p in config7.processes}
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        result = run_weak_ba(config7, inputs, validity)
        report = verify_run(
            result,
            validity=lambda v: isinstance(v, str),
            allow_bottom=True,
        )
        assert report.ok, report.summary()

    def test_worst_case_run_fits_quadratic_budget(self, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        result = run_byzantine_broadcast(
            config7, sender=0, value="v", byzantine=byzantine
        )
        assert verify_run(result, word_budget=quadratic_word_budget()).ok
        report = verify_run(result, word_budget=adaptive_word_budget(1.0))
        assert not report.ok  # the tight adaptive budget is exceeded at f=t
        assert report.violations[0].kind == "word-budget"


class TestSyntheticViolations:
    def test_detects_disagreement(self, config5):
        result = synthetic_result(
            config5, {0: "a", 1: "a", 2: "b", 3: "a", 4: "a"}
        )
        report = verify_run(result)
        assert any(v.kind == "agreement" for v in report.violations)

    def test_detects_missing_decision(self, config5):
        result = synthetic_result(config5, {p: "a" for p in range(4)})
        report = verify_run(result)
        assert any(v.kind == "termination" for v in report.violations)

    def test_undecided_sentinel_counts_as_no_decision(self, config5):
        decisions = {p: "a" for p in range(5)}
        decisions[2] = UNDECIDED
        report = verify_run(synthetic_result(config5, decisions))
        assert any(v.kind == "termination" for v in report.violations)

    def test_corrupted_processes_exempt(self, config5):
        result = synthetic_result(
            config5, {p: "a" for p in range(4)}, corrupted={4}
        )
        assert verify_run(result).ok

    def test_expected_decision_mismatch(self, config5):
        result = synthetic_result(config5, {p: "a" for p in range(5)})
        report = verify_run(result, expected_decision="b")
        assert any(v.kind == "validity" for v in report.violations)

    def test_validity_predicate_and_bottom(self, config5):
        result = synthetic_result(config5, {p: 42 for p in range(5)})
        report = verify_run(result, validity=lambda v: isinstance(v, str))
        assert any(v.kind == "validity" for v in report.violations)

        bottomed = synthetic_result(config5, {p: BOTTOM for p in range(5)})
        assert verify_run(
            bottomed, validity=lambda v: True, allow_bottom=True
        ).ok
        report = verify_run(
            bottomed, validity=lambda v: True, allow_bottom=False
        )
        assert any(v.kind == "validity" for v in report.violations)

    def test_decide_once_violation(self, config5):
        trace = Trace()
        trace.emit(tick=1, pid=0, scope="bb", name="decided", value="a")
        trace.emit(tick=2, pid=0, scope="bb", name="decided", value="a")
        result = synthetic_result(
            config5, {p: "a" for p in range(5)}, trace=trace
        )
        report = verify_run(result)
        assert any(v.kind == "decide-once" for v in report.violations)

    def test_summary_format(self, config5):
        ok_report = verify_run(synthetic_result(config5, {p: "a" for p in range(5)}))
        assert ok_report.summary().startswith("OK")
        bad = verify_run(synthetic_result(config5, {}))
        assert "violation" in bad.summary()
