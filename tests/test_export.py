"""Tests for the JSON run exporter/loader."""

import json

import pytest

from repro.analysis.export import load_run, save_run
from repro.adversary.behaviors import SilentBehavior
from repro.core.byzantine_broadcast import run_byzantine_broadcast


@pytest.fixture
def result(config7):
    return run_byzantine_broadcast(
        config7, sender=0, value="v", byzantine={3: SilentBehavior()}
    )


class TestRoundTrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        loaded = load_run(path)
        assert loaded.n == result.config.n
        assert loaded.t == result.config.t
        assert loaded.f == result.f
        assert loaded.corrupted == result.corrupted
        assert loaded.ticks == result.ticks
        assert loaded.correct_words == result.correct_words
        assert loaded.ledger.correct_messages == result.ledger.correct_messages

    def test_ledger_aggregations_survive(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert loaded.ledger.words_by_scope() == result.ledger.words_by_scope()
        assert (
            loaded.ledger.signature_count() == result.ledger.signature_count()
        )

    def test_trace_survives(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        assert loaded.trace.count("decided") == result.trace.count("decided")
        assert loaded.trace.scopes() == result.trace.scopes()

    def test_decisions_exported_as_reprs(self, result, tmp_path):
        loaded = load_run(save_run(result, tmp_path / "run.json"))
        for pid in result.correct_pids:
            assert loaded.decisions[pid] == repr(result.decisions[pid])

    def test_valid_json_on_disk(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        raw = json.loads(path.read_text())
        assert raw["format_version"] == 2
        assert raw["summary"]["fallback_used"] == result.fallback_was_used()

    def test_flows_work_on_loaded_runs(self, result, tmp_path):
        """Offline analysis: the flow helpers accept a loaded ledger."""
        from repro.analysis.flows import flow_matrix, words_per_tick

        loaded = load_run(save_run(result, tmp_path / "run.json"))
        matrix = flow_matrix(loaded.ledger, loaded.n)
        assert sum(sum(row) for row in matrix) == loaded.correct_words
        assert sum(words_per_tick(loaded.ledger).values()) == loaded.correct_words


class TestVersionGuard:
    def test_unknown_version_rejected(self, result, tmp_path):
        path = save_run(result, tmp_path / "run.json")
        raw = json.loads(path.read_text())
        raw["format_version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError):
            load_run(path)
