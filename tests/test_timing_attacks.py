"""Timing-based attacks: late releases, replays, future-phase messages.

The synchronous model constrains *honest* delivery, not when the
adversary chooses to speak; these tests check the protocols' windows
and tag filtering against out-of-schedule traffic.
"""

from dataclasses import dataclass

from repro.adversary.protocol_attacks import (
    WeakBaSplitFinalizeLeader,
)
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import (
    FALLBACK_STATEMENT,
    WbaFallbackCert,
    WbaPropose,
    fallback_label,
    run_weak_ba,
)
from repro.crypto.certificates import CertificateCollector
from repro.runtime.byzantine import ByzantineApi
from repro.runtime.scheduler import Simulation

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))
VALIDITY_FACTORY = lambda suite, cfg: VALIDITY


@dataclass
class LateCertReleaser:
    """Collects help-request shares like the dealer, but releases the
    certificate long after every correct process's grace window."""

    release_tick: int
    session: str = "wba"

    def __post_init__(self) -> None:
        self._partials = []

    def step(self, api: ByzantineApi) -> None:
        from repro.core.weak_ba import WbaHelpReq

        for envelope in api.inbox:
            if isinstance(envelope.payload, WbaHelpReq):
                self._partials.append(envelope.payload.partial)
        if api.now == self.release_tick and self._partials:
            collector = CertificateCollector(
                api.suite,
                fallback_label(self.session),
                api.config.small_quorum,
                FALLBACK_STATEMENT,
            )
            for partial in self._partials:
                collector.add(partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        fallback_label(self.session),
                        api.config.small_quorum,
                        FALLBACK_STATEMENT,
                    )
                )
            if collector.complete:
                for pid in api.config.processes:
                    if pid not in api.corrupted:
                        api.send(
                            pid,
                            WbaFallbackCert(
                                session=self.session,
                                certificate=collector.certificate(),
                                value=None,
                                proof=None,
                                proof_phase=0,
                            ),
                        )


@dataclass
class FuturePhaseSpammer:
    """Floods proposals tagged with phases far in the future (and far in
    the past) — pool filtering must keep them inert."""

    session: str = "wba"

    def step(self, api: ByzantineApi) -> None:
        for phase in (-3, 0, 999, 10_000):
            api.broadcast(
                WbaPropose(session=self.session, phase=phase, value="ghost")
            )


class TestLateRelease:
    def test_late_certificate_does_not_block_termination(self, config7):
        """The adversary sits on a combinable certificate and releases
        it after every correct process's grace window: the run must
        still terminate, unanimously, without a fallback."""
        simulation = Simulation(config7, seed=0)
        # One split leader creates undecided processes (their help_reqs
        # feed the releaser); two more Byzantine complete the coalition.
        simulation.add_byzantine(
            1,
            WeakBaSplitFinalizeLeader(value="v", recipients=frozenset({2, 4})),
        )
        simulation.add_byzantine(5, LateCertReleaser(release_tick=200))
        simulation.add_byzantine(6, LateCertReleaser(release_tick=210))
        from repro.core.weak_ba import weak_ba_protocol

        for pid in (0, 2, 3, 4):
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "v", VALIDITY)
            )
        result = simulation.run()
        assert result.unanimous_decision() == "v"
        # Everyone decided and halted long before the release tick.
        assert all(tick < 200 for tick in result.halted_at.values())


class TestTagFiltering:
    def test_future_and_past_phase_proposals_ignored(self, config7):
        byzantine = {3: FuturePhaseSpammer()}
        inputs = {p: "v" for p in config7.processes if p != 3}
        result = run_weak_ba(
            config7, inputs, VALIDITY_FACTORY, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
        # The ghosts never gathered a single honest vote.
        votes = [
            r for r in result.ledger.records
            if r.payload_type == "WbaVote" and r.sender_correct
        ]
        assert len(votes) <= config7.n  # only phase 1's legitimate votes

    def test_cross_session_replay_is_inert(self, config7):
        """Messages recorded in one BB session cannot influence another
        (session tags bind every certificate and payload)."""

        @dataclass
        class Replayer:
            recorded: list

            def step(self, api: ByzantineApi) -> None:
                for envelope in api.inbox:
                    self.recorded.append(envelope.payload)
                # Replay everything seen so far, every tick.
                for payload in self.recorded[-10:]:
                    api.broadcast(payload)

        byzantine = {4: Replayer(recorded=[])}
        result = run_byzantine_broadcast(
            config7, sender=0, value="original", byzantine=byzantine,
            seed=7,
        )
        assert result.unanimous_decision() == "original"
