"""Deep safety tests for weak BA's commit/lock machinery (Alg. 4).

These target the cross-phase arguments of Lemma 15: committed values
survive later leaders, commit levels are monotone, and finalize
certificates are unique.
"""

import pytest

from repro.adversary.protocol_attacks import (
    WeakBaCommitOnlyLeader,
    WeakBaEquivocatingLeader,
)
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba, weak_ba_protocol
from repro.runtime.scheduler import Simulation

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))
VALIDITY_FACTORY = lambda suite, cfg: VALIDITY


class TestCommitLock:
    def test_committed_value_wins_over_later_proposals(self, config7):
        """Byzantine p1 commits 'locked' to everyone but never
        finalizes; honest p2 then proposes its own value — but must
        relay the existing commitment, so 'locked' is what finalizes."""
        byzantine = {1: WeakBaCommitOnlyLeader(value="locked")}
        inputs = {p: f"own-{p}" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, VALIDITY_FACTORY, byzantine=byzantine
        )
        assert result.unanimous_decision() == "locked"

    def test_commit_survives_multiple_byzantine_leaders(self):
        """Two commit-only Byzantine leaders in sequence: the second's
        higher-level commitment relays fine; agreement holds."""
        config = SystemConfig.with_optimal_resilience(9)
        byzantine = {
            1: WeakBaCommitOnlyLeader(value="first"),
            2: WeakBaCommitOnlyLeader(value="second"),
        }
        inputs = {p: "honest" for p in config.processes if p not in byzantine}
        result = run_weak_ba(
            config, inputs, VALIDITY_FACTORY, byzantine=byzantine
        )
        decision = result.unanimous_decision()
        # Whichever commitment won the race, everyone agrees on it; and
        # it must be one of the committed values (honest proposals can
        # no longer gather votes once everyone is committed).
        assert decision in ("first", "second")

    def test_decide_shares_follow_relayed_commit_not_proposal(self, config7):
        """After a commitment exists, a later *honest* leader's phase
        finalizes the committed value even though the leader proposed
        its own — Alg. 4 lines 35-39 exactly."""
        byzantine = {1: WeakBaCommitOnlyLeader(value="locked")}
        inputs = {p: f"own-{p}" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, VALIDITY_FACTORY, byzantine=byzantine
        )
        # The phase that decided was led by an honest process (2), yet
        # the decided value is the Byzantine-committed one.
        deciding_phases = {
            e.get("phase") for e in result.trace.named("wba_decided_in_phase")
        }
        assert deciding_phases == {2}
        assert result.unanimous_decision() == "locked"


class TestFinalizeUniqueness:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivocating_leader_cannot_split_at_paper_quorum(
        self, seed, config7
    ):
        """Lemma 15 under direct attack: with the ⌈(n+t+1)/2⌉ quorum,
        no seed lets the two-value leader split a decision."""
        simulation = Simulation(config7, seed=seed)
        simulation.add_byzantine(
            1,
            WeakBaEquivocatingLeader(
                value_a="A", value_b="B", quorum=config7.commit_quorum
            ),
        )
        for pid in config7.processes:
            if pid == 1:
                continue
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "honest", VALIDITY)
            )
        result = simulation.run()
        result.unanimous_decision()  # must not raise

    def test_at_most_one_value_finalizes_across_phases(self, config7):
        """Scan the whole trace: every in-phase decision event across
        all processes names the same value (Lemma 15's statement)."""
        byzantine = {1: WeakBaCommitOnlyLeader(value="locked")}
        inputs = {p: f"own-{p}" for p in config7.processes if p != 1}
        result = run_weak_ba(
            config7, inputs, VALIDITY_FACTORY, byzantine=byzantine
        )
        finalized_values = {
            e.get("value") for e in result.trace.named("wba_decided_in_phase")
        }
        assert len(finalized_values) == 1
