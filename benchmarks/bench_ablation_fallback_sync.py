"""Ablation: the echo-once rule for fallback certificates.

Section 6: "an adversary can form the fallback certificate and deal it
to only some correct processes ... We thus require a correct process
that receives a fallback certificate to broadcast it.  This ensures
that whenever one correct process runs the fallback algorithm, all of
them do [within delta]."

Attack setup (the paper's own scenario): a Byzantine split-finalize
leader leaves only two correct processes undecided (fewer than t+1
help requests), the adversary tops the certificate up with its own
shares and deals it to a single victim.

* with echoing -> every correct process enters the fallback, entry
  ticks within delta of each other, and agreement holds;
* echo ablated -> only the victim runs the fallback and decides its
  own stale value: agreement breaks.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import (
    FallbackCertDealer,
    WeakBaSplitFinalizeLeader,
)
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.runtime.scheduler import Simulation

from benchmarks._harness import publish

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))


def run_dealt(echo: bool, seed: int = 0):
    """n=7, t=3.  Byzantine: p1 (split-finalize leader, finalizes only
    to p2 and p4), p5 (certificate dealer targeting p0), p6 (silent).
    Correct: p0, p2, p3, p4 — p0 and p3 stay undecided after the
    phases, so only 2 < t+1 honest help requests exist."""
    config = SystemConfig.with_optimal_resilience(7)
    simulation = Simulation(config, seed=seed)
    simulation.add_byzantine(
        1,
        WeakBaSplitFinalizeLeader(value="committed", recipients=frozenset({2, 4})),
    )
    simulation.add_byzantine(5, FallbackCertDealer(target=0))
    simulation.add_byzantine(6, SilentBehavior())
    for pid in (0, 2, 3, 4):
        simulation.add_process(
            pid,
            lambda ctx: weak_ba_protocol(
                ctx, "own-input", VALIDITY, echo_fallback_certificate=echo
            ),
        )
    return simulation.run()


def fallback_entries(result):
    return {
        e.pid: e.tick
        for e in result.trace.named("fallback_started")
        if e.pid not in result.corrupted
    }


def test_echo_synchronizes_fallback_entry(benchmark):
    result = run_dealt(echo=True)
    entries = fallback_entries(result)
    decision = result.unanimous_decision()
    skew = max(entries.values()) - min(entries.values()) if entries else 0
    publish(
        "ablation_fallback_sync_with_echo",
        format_table(
            ["pid", "fallback entry tick"], sorted(entries.items())
        ),
        f"decision: {decision!r}; entry skew: {skew} tick(s) "
        "(paper: all correct processes enter within delta = 1 tick)",
    )
    assert set(entries) == {0, 2, 3, 4}, "echo must pull everyone in"
    assert skew <= 1
    assert decision == "committed"
    benchmark.pedantic(lambda: run_dealt(echo=True), rounds=3, iterations=1)


def test_ablated_echo_strands_the_victim(benchmark):
    """Without the echo, only the dealt-to victim enters the fallback:
    it runs the whole quadratic ``Afallback`` among processes that are
    not participating — an execution with *no honest majority of
    participants*, whose output is unsound.

    Agreement still holds in this run, but only because the help round
    already delivered the finalize certificate to the victim before the
    certificate was dealt (at ``n = 2t + 1`` an undecided-and-unhelped
    victim cannot exist, since all-correct-undecided implies ``t + 1``
    honest help requests and hence a certificate at everyone).  In the
    paper's non-halting model the echo is what upgrades this accident
    of timing into a guarantee; what the ablation *measures* is the
    broken synchronization: participation asymmetry plus the victim's
    wasted quadratic spend."""
    with_echo = run_dealt(echo=True)
    without_echo = run_dealt(echo=False)
    entries = fallback_entries(without_echo)
    decision = without_echo.unanimous_decision()  # rescued by help round
    victim_words = without_echo.ledger.words_by_sender().get(0, 0)
    others_words = [
        without_echo.ledger.words_by_sender().get(pid, 0) for pid in (2, 3, 4)
    ]
    publish(
        "ablation_fallback_sync_without_echo",
        format_table(
            ["pid", "fallback entry tick"], sorted(entries.items())
        ),
        f"only {sorted(entries)} entered the fallback (echo run: "
        f"{sorted(fallback_entries(with_echo))}); decision {decision!r} "
        "was rescued by the help round, not by the fallback.\n"
        f"victim words: {victim_words}; other correct processes: "
        f"{others_words} — the victim alone pays a fallback-scale bill "
        "for an unsound (no-honest-majority-participation) execution.",
    )
    assert set(entries) == {0}, "without echo only the victim enters"
    assert decision == "committed"
    assert victim_words > 2 * max(others_words)
    benchmark.pedantic(lambda: run_dealt(echo=False), rounds=3, iterations=1)
