"""Table 1, row "Strong BA, O(n^2) multi-valued (Momose–Ren)".

The paper's fallback black box: our Momose–Ren-style recursive BA.
This bench certifies the substitute meets the interface contract the
paper relies on — strong BA at n = 2t+1 with quadratic words for any
f, including f = t.
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_fallback_ba
from repro.analysis.tables import render_points

from benchmarks._harness import publish

NS = (5, 9, 17, 33)


def test_fallback_words_quadratic_in_n(benchmark):
    points = sweep_fallback_ba(NS, fs=lambda c: [0])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_fallback_quadratic",
        render_points(points),
        f"log-log slope of words vs n (f=0): {fit.slope:.3f} "
        f"(Momose-Ren bound: O(n^2) -> ~2.0), R^2={fit.r_squared:.4f}",
    )
    assert 1.6 < fit.slope < 2.4
    for p in points:
        assert p.decision == "v"
    benchmark.pedantic(
        lambda: sweep_fallback_ba([9], fs=lambda c: [0]), rounds=3, iterations=1
    )


def test_fallback_cost_insensitive_to_f(benchmark):
    """Unlike the adaptive protocols, the fallback costs Θ(n^2) no
    matter how many processes actually fail — that is exactly why the
    paper only invokes it once f = Θ(t) is certified."""
    n = 17
    points = sweep_fallback_ba([n], fs=lambda c: [0, c.t // 2, c.t])
    words = [p.words for p in points]
    publish(
        "table1_fallback_f_insensitive",
        render_points(points),
        f"words at f=0 / f=t/2 / f=t: {words} — every point stays "
        "Theta(n^2) (>= n^2/4), never collapsing toward O(nf)",
    )
    assert max(words) < 3 * min(words)
    assert all(w >= n * n / 4 for w in words)
    for p in points:
        assert p.decision == "v"
    benchmark.pedantic(
        lambda: sweep_fallback_ba([9], fs=lambda c: [c.t]),
        rounds=1,
        iterations=1,
    )
