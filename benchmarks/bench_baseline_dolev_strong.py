"""Section 4's motivating gap: messages vs words (Dolev–Strong baseline).

Dolev–Reischuk's classical algorithm matches the Ω(nt) *message* bound
but its messages carry signature chains, so its *word* complexity is
super-quadratic.  The paper's adaptive BB beats it by orders of
magnitude in common runs while offering the same interface.  This bench
regenerates the comparison and locates the (non-)crossover.
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_byzantine_broadcast, sweep_dolev_strong
from repro.analysis.tables import format_table

from benchmarks._harness import publish

NS = (5, 9, 13, 17, 21)


def _late_release_run(n: int):
    """Worst-case Dolev–Strong: the corrupted coalition stretches the
    signature chain to length t before honest processes ever see it."""
    from repro.adversary.behaviors import SilentBehavior
    from repro.adversary.protocol_attacks import DolevStrongLateRelease
    from repro.config import SystemConfig
    from repro.fallback.dolev_strong import run_dolev_strong

    config = SystemConfig.with_optimal_resilience(n)
    byzantine = {0: DolevStrongLateRelease(value="late")}
    for accomplice in range(1, config.t):
        byzantine[accomplice] = SilentBehavior()
    result = run_dolev_strong(
        config, sender=0, value=None, byzantine=byzantine
    )
    assert result.unanimous_decision() == "late"
    return result


def test_words_vs_messages_gap(benchmark):
    """Under the chain-stretching adversary, each relayed message
    carries Θ(t) signatures: words outgrow messages by a factor of n."""
    rows = []
    word_series, msg_series, ns = [], [], []
    for n in NS:
        result = _late_release_run(n)
        words = result.correct_words
        messages = result.ledger.correct_messages
        rows.append([n, messages, words, f"{words / messages:.2f}"])
        ns.append(n)
        word_series.append(words)
        msg_series.append(messages)
    word_fit = fit_slope_vs(zip(ns, word_series), lambda p: p[0], lambda p: p[1])
    msg_fit = fit_slope_vs(zip(ns, msg_series), lambda p: p[0], lambda p: p[1])
    publish(
        "baseline_dolev_strong_gap",
        format_table(["n", "messages", "words", "words/message"], rows),
        f"worst-case Dolev-Strong slopes vs n: messages {msg_fit.slope:.2f} "
        f"(matches the Omega(nt) message bound), words {word_fit.slope:.2f} "
        "(cubic-regime chains) — Section 4's words-vs-messages gap.",
    )
    assert word_fit.slope > msg_fit.slope + 0.5
    assert rows[-1][1] * 3 < rows[-1][2]  # words >> messages at scale
    benchmark.pedantic(lambda: _late_release_run(9), rounds=3, iterations=1)


def test_crossover_sits_in_the_fallback_regime(benchmark):
    """Where does adaptive BB stop beating the baseline?  Sweeping f at
    fixed n: the adaptive cost only reaches Dolev–Strong's once the
    quadratic fallback engages — inside the adaptive regime the paper's
    protocol is strictly cheaper at every f."""
    from repro.adversary.strategies import SilentStrategy
    from repro.analysis.fitting import crossover_point
    from repro.config import SystemConfig

    n = 13
    config = SystemConfig.with_optimal_resilience(n)
    baseline_words = sweep_dolev_strong([n], fs=lambda c: [0])[0].words
    points = sweep_byzantine_broadcast(
        [n],
        fs=lambda c: range(c.t + 1),
        strategy=SilentStrategy(avoid=frozenset({0})),
    )
    fs = [p.f for p in points]
    adaptive = [p.words for p in points]
    crossover = crossover_point(
        fs, adaptive, [baseline_words] * len(fs)
    )
    first_fallback = next(
        (p.f for p in points if p.fallback_used), None
    )
    rows = [
        [p.f, p.words, baseline_words,
         "fallback" if p.fallback_used else "adaptive"]
        for p in points
    ]
    publish(
        "baseline_crossover",
        format_table(["f", "adaptive BB words", "Dolev-Strong (f=0)",
                      "regime"], rows),
        f"crossover at f={crossover}; first fallback at f={first_fallback} "
        f"(threshold (n-t-1)/2 = {config.fallback_failure_threshold}).  "
        "The baseline is only ever matched inside the fallback regime.",
    )
    assert crossover is not None and first_fallback is not None
    assert crossover >= first_fallback
    for p in points:
        if not p.fallback_used:
            assert p.words < baseline_words
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([9], fs=lambda c: [c.t]),
        rounds=1,
        iterations=1,
    )


def test_adaptive_bb_dominates_baseline(benchmark):
    adaptive = sweep_byzantine_broadcast(NS, fs=lambda c: [0])
    baseline = sweep_dolev_strong(NS, fs=lambda c: [0])
    rows = [
        [a.n, a.words, b.words, f"{b.words / a.words:.1f}x"]
        for a, b in zip(adaptive, baseline)
    ]
    publish(
        "baseline_dolev_strong_comparison",
        format_table(
            ["n", "adaptive BB words", "Dolev-Strong words", "advantage"],
            rows,
        ),
        "No crossover: the adaptive protocol wins at every n, with the "
        "advantage widening as n grows.",
    )
    advantages = [b.words / a.words for a, b in zip(adaptive, baseline)]
    assert all(adv > 1 for adv in advantages)
    assert advantages[-1] > advantages[0]  # gap widens with n
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([9], fs=lambda c: [0]),
        rounds=3,
        iterations=1,
    )
