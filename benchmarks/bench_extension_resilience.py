"""Extension experiment (Section 8): resilience n = αt + β, α > 1.

The paper closes by noting its weak-BA quorum argument generalizes to
any resilience with a gap above 2t: the intersection property survives
and the adaptive regime *widens* (the fallback threshold (n-t-1)/2
grows with n at fixed t).  This bench measures that trade: extra
processes buy a strictly larger failure budget before the quadratic
fallback engages, at a linear-in-n price per run.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

from benchmarks._harness import publish

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


def max_adaptive_f(config: SystemConfig) -> tuple[int, dict[int, int]]:
    """Largest silent-failure count that stays off the fallback path,
    plus the words measured at each f."""
    words = {}
    best = -1
    for f in range(config.t + 1):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: "v" for p in config.processes if p not in byzantine}
        result = run_weak_ba(config, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        words[f] = result.correct_words
        if not result.fallback_was_used():
            best = max(best, f)
    return best, words


def test_adaptive_regime_widens_with_resilience_gap(benchmark):
    t = 3
    rows = []
    thresholds = []
    for n in (7, 10, 13, 16):
        config = SystemConfig(n=n, t=t)
        best, words = max_adaptive_f(config)
        predicted = config.fallback_failure_threshold
        rows.append(
            [
                n,
                t,
                f"{predicted:.1f}",
                best,
                words[0],
                words[min(config.t, best if best >= 0 else 0)],
            ]
        )
        thresholds.append((n, predicted, best))
        # The silent-adversary activation boundary must track the
        # commit-quorum reachability exactly.
        for f in range(config.t + 1):
            assert config.commit_quorum_reachable(f) == (f <= best)
    publish(
        "extension_resilience",
        format_table(
            ["n", "t", "(n-t-1)/2", "max adaptive f (measured)",
             "words f=0", "words at max adaptive f"],
            rows,
        ),
        "Section 8 reproduced: at fixed t, adding processes widens the "
        "adaptive regime — n=7 tolerates f<=1 adaptively, n=13 already "
        "tolerates f=t=3 without ever touching the fallback.",
    )
    # Monotonically non-decreasing adaptive budget with n.
    budgets = [best for _, _, best in thresholds]
    assert budgets == sorted(budgets)
    assert budgets[-1] == t  # wide-enough gap: the whole t is adaptive
    benchmark.pedantic(
        lambda: max_adaptive_f(SystemConfig(n=10, t=3)),
        rounds=1,
        iterations=1,
    )
