"""Ancillary measurement: the rounds-for-words trade.

The paper optimizes *words*; its rotating-phase structure pays with
*rounds* (time).  This bench makes the trade explicit — useful context
the brief announcement leaves implicit:

* Algorithm 5's fast path: **O(1)** rounds (and O(n) words);
* Dolev–Strong: **t + 2** rounds (and cubic worst-case words);
* adaptive BB: **O(n)** rounds (phases run even when silent) — the
  price of O(n(f+1)) words;
* the fallback adds **O(n)** more rounds when it engages.
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.fallback.dolev_strong import run_dolev_strong

from benchmarks._harness import publish

NS = (5, 9, 17, 33)


def test_round_complexity_trade(benchmark):
    rows = []
    bb_rounds, ds_rounds, sba_rounds = [], [], []
    for n in NS:
        config = SystemConfig.with_optimal_resilience(n)
        bb = run_byzantine_broadcast(config, sender=0, value="v")
        ds = run_dolev_strong(config, sender=0, value="v")
        sba = run_strong_ba(config, {p: 1 for p in config.processes})
        rows.append(
            [n, bb.ticks, bb.correct_words, ds.ticks, ds.correct_words,
             sba.ticks, sba.correct_words]
        )
        bb_rounds.append((n, bb.ticks))
        ds_rounds.append((n, ds.ticks))
        sba_rounds.append((n, sba.ticks))
        assert ds.ticks == config.t + 2  # Dolev-Strong's exact schedule
    bb_fit = fit_slope_vs(bb_rounds, lambda p: p[0], lambda p: p[1])
    publish(
        "round_complexity",
        format_table(
            ["n", "BB rounds", "BB words", "DS rounds", "DS words",
             "Alg5 rounds", "Alg5 words"],
            rows,
        ),
        f"adaptive BB rounds grow ~n^{bb_fit.slope:.2f} (the price of "
        "word adaptivity); Dolev-Strong stays at t+2 rounds but pays in "
        "words; Algorithm 5's fast path is constant-round AND linear-"
        "word — in its binary failure-free niche.",
    )
    # Alg 5 fast path: constant rounds independent of n.
    assert len({ticks for _, ticks in sba_rounds}) == 1
    # BB rounds ~linear in n.
    assert 0.8 < bb_fit.slope < 1.2
    benchmark.pedantic(
        lambda: run_byzantine_broadcast(
            SystemConfig.with_optimal_resilience(9), sender=0, value="v"
        ),
        rounds=3,
        iterations=1,
    )
