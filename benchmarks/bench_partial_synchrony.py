"""The GST envelope: every Table-1 protocol under partial synchrony.

For each protocol, run failure-free at ``n=5`` under
:class:`~repro.runtime.synchrony.PartialSynchrony` with the global
stabilization time swept across positions, and record the decision
latency (ticks), the word bill, and a per-run **safety flag** —
whether the run still reached the unanimous lockstep decision.

The expected shape (asserted below, published for EXPERIMENTS.md):

* ``gst=0`` reproduces the lockstep trajectory exactly for every
  protocol — same decision, same word bill;
* the paper's protocols (BB, weak/strong/adaptive-strong BA, the
  quadratic fallback) degrade *gracefully*: decisions stay safe at
  every swept GST position, latency grows with GST;
* Dolev–Strong — a pure synchronous relay with no quorum or timeout
  machinery — genuinely loses agreement once the adversary controls
  enough pre-GST rounds.  That row ships with ``safe: false`` entries:
  it is the honest baseline showing what the certificate machinery
  buys, not a harness bug (see docs/partial_synchrony.md).
"""

from repro.config import RunParameters, SystemConfig
from repro.core.adaptive_strong_ba import run_adaptive_strong_ba
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM
from repro.core.weak_ba import run_weak_ba
from repro.fallback.dolev_strong import run_dolev_strong
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.synchrony import PartialSynchrony

from benchmarks._harness import publish, time_percentiles, word_bill

N = 5
GSTS = (0, 2, 4, 6, 8)
MAX_TICKS = 5000

CONFIG = SystemConfig.with_optimal_resilience(N)


def _string_validity(suite, config):
    return ExternalValidity(lambda v: isinstance(v, str))


def _params(gst: int) -> RunParameters:
    return RunParameters(
        max_ticks=MAX_TICKS, synchrony=PartialSynchrony(gst=gst)
    )


PROTOCOLS = {
    "bb": lambda params: run_byzantine_broadcast(
        CONFIG, sender=0, value="v", params=params
    ),
    "weak_ba": lambda params: run_weak_ba(
        CONFIG,
        {p: "v" for p in CONFIG.processes},
        _string_validity,
        params=params,
    ),
    "strong_ba": lambda params: run_strong_ba(
        CONFIG, {p: 1 for p in CONFIG.processes}, params=params
    ),
    "adaptive_strong_ba": lambda params: run_adaptive_strong_ba(
        CONFIG, {p: 1 for p in CONFIG.processes}, params=params
    ),
    "fallback_ba": lambda params: run_fallback_ba(
        CONFIG, {p: "v" for p in CONFIG.processes}, params=params
    ),
    "dolev_strong": lambda params: run_dolev_strong(
        CONFIG, sender=0, value="v", params=params
    ),
}


def _sweep_protocol(name: str) -> list[dict]:
    """One protocol's GST envelope: rows of measurements, gst=0 first."""
    runner = PROTOCOLS[name]
    baseline = runner(RunParameters(max_ticks=MAX_TICKS))
    expected = baseline.unanimous_decision()
    rows = []
    for gst in GSTS:
        result = runner(_params(gst))
        decisions = {
            result.decisions.get(p, BOTTOM)
            for p in result.correct_pids
        }
        safe = (not result.truncated) and decisions == {expected}
        rows.append(
            {
                "protocol": name,
                "gst": gst,
                "ticks": result.ticks,
                "words": result.ledger.correct_words,
                "safe": safe,
                "truncated": result.truncated,
                "baseline_ticks": baseline.ticks,
                "baseline_words": baseline.ledger.correct_words,
                "_result": result,
            }
        )
    return rows


def _render(rows: list[dict]) -> str:
    header = f"{'protocol':<20} {'gst':>4} {'ticks':>6} {'words':>6} {'safe':>5}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['protocol']:<20} {row['gst']:>4} {row['ticks']:>6} "
            f"{row['words']:>6} {str(row['safe']).lower():>5}"
        )
    return "\n".join(lines)


def test_gst_envelope(benchmark):
    all_rows: list[dict] = []
    for name in PROTOCOLS:
        all_rows.extend(_sweep_protocol(name))

    by_protocol = {
        name: [r for r in all_rows if r["protocol"] == name]
        for name in PROTOCOLS
    }

    # gst=0 == lockstep, bit-for-bit on the billed measures.
    for name, rows in by_protocol.items():
        first = rows[0]
        assert first["gst"] == 0
        assert first["safe"], name
        assert first["words"] == first["baseline_words"], name
        assert first["ticks"] == first["baseline_ticks"], name

    # The paper's protocols stay safe across the whole sweep; latency
    # never shrinks below the synchronous run's.
    for name in ("bb", "weak_ba", "strong_ba", "adaptive_strong_ba",
                 "fallback_ba"):
        for row in by_protocol[name]:
            assert row["safe"], (name, row["gst"])
            assert row["ticks"] >= row["baseline_ticks"]

    # The synchronous-relay baseline genuinely degrades: agreement is
    # timing-dependent without certificates or timeouts to lean on.
    ds = by_protocol["dolev_strong"]
    assert any(not row["safe"] for row in ds), (
        "dolev_strong unexpectedly survived every GST position; "
        "the envelope should show why certificate machinery matters"
    )

    word_bills = [
        word_bill(f"{r['protocol']} gst={r['gst']}", r.pop("_result"))
        for r in all_rows
    ]
    wall = time_percentiles(
        lambda: PROTOCOLS["weak_ba"](_params(4)), repeats=3
    )
    publish(
        "partial_synchrony",
        _render(all_rows),
        "safe = unanimous non-truncated decision equal to the lockstep "
        "decision.  dolev_strong rows with safe=false are the expected "
        "baseline finding (docs/partial_synchrony.md).",
        scenario={
            "n": N,
            "t": CONFIG.t,
            "gst_positions": list(GSTS),
            "model": "PartialSynchrony(gst=<swept>, delta=1, seed=0)",
            "rows": [
                {k: v for k, v in row.items()} for row in all_rows
            ],
        },
        word_bills=word_bills,
        wall_clock=wall,
    )
    benchmark.pedantic(
        lambda: PROTOCOLS["weak_ba"](_params(2)), rounds=3, iterations=1
    )
