"""Fault-tolerance experiment: agreement and word bills under injected faults.

The paper's model charges the adversary for every faulty sender, so a
run perturbed by send-omission drops confined to ``lossy`` senders must
still decide and still fit the adaptive O(n(f+1)) envelope with
``f = |byzantine ∪ lossy|``.  Duplication, sub-δ delays, and reordering
are free for the adversary — and must be invisible in the word bill.

This bench sweeps drop rates over one and two lossy senders in the tick
simulator, then replays the harshest plan over real TCP sockets with a
mid-run connection reset: the transport must reconnect (with backoff)
and the socket run must reproduce the simulator's decisions *and word
counts* exactly — the fault layer is deterministic in (seed, edge,
tick, seq), not in wall-clock timing.
"""

import asyncio
import dataclasses

from repro.analysis.tables import format_table
from repro.asyncnet.tcp import run_over_tcp
from repro.config import RunParameters, SystemConfig
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.faults import ConnectionReset, FaultPlan
from repro.verify import verify_under_plan

from benchmarks._harness import publish, time_percentiles, word_bill

CONFIG = SystemConfig(n=5, t=2)

MIXED = FaultPlan(
    seed=11,
    drop_rate=0.3,
    duplicate_rate=0.3,
    reorder_rate=0.5,
    delay_rate=0.5,
    max_delay=0.4,
    lossy=frozenset({1}),
)


def run_sim(plan: FaultPlan):
    result = run_byzantine_broadcast(
        CONFIG, sender=0, value="v", params=RunParameters(fault_plan=plan)
    )
    assert result.unanimous_decision() == "v"
    report = verify_under_plan(result, plan, expected_decision="v")
    assert report.ok, report.summary()
    return result


def test_drop_sweep_stays_inside_adaptive_envelope(benchmark):
    baseline = run_byzantine_broadcast(CONFIG, sender=0, value="v")
    rows = []
    bills = []
    for lossy in (frozenset({1}), frozenset({1, 3})):
        for drop in (0.0, 0.2, 0.4, 0.8):
            plan = FaultPlan(
                seed=7,
                drop_rate=drop,
                duplicate_rate=0.3,
                reorder_rate=0.5,
                delay_rate=0.5,
                max_delay=0.4,
                lossy=lossy,
            )
            result = run_sim(plan)
            effective_f = len(plan.faulty)
            bills.append(
                word_bill(f"bb lossy={sorted(lossy)} drop={drop}", result)
            )
            rows.append(
                [
                    sorted(lossy),
                    drop,
                    effective_f,
                    result.correct_words,
                    result.ticks,
                    "yes" if result.fallback_was_used() else "no",
                ]
            )
            if drop == 0.0:
                # A plan with no drops charges nobody and changes nothing.
                assert result.correct_words == baseline.correct_words
    publish_rows = format_table(
        ["lossy senders", "drop rate", "effective f", "correct words",
         "ticks", "fallback"],
        rows,
    )
    publish(
        "fault_tolerance",
        publish_rows,
        "Every run decides the sender's value and fits the adaptive "
        "O(n(f+1)) budget with f = |lossy| (checked by verify_under_plan); "
        "duplicates, reordering, and sub-delta delays never appear in the "
        "word bill, and zero-drop plans cost exactly the failure-free bill.",
        scenario={"protocol": "bb", "n": CONFIG.n, "t": CONFIG.t,
                  "drop_rates": [0.0, 0.2, 0.4, 0.8],
                  "lossy_sets": [[1], [1, 3]], "fault_seed": 7},
        word_bills=bills,
        wall_clock=time_percentiles(lambda: run_sim(MIXED), repeats=3),
    )
    benchmark.pedantic(lambda: run_sim(MIXED), rounds=1, iterations=1)


def test_tcp_run_reproduces_simulator_under_resets():
    plan = dataclasses.replace(
        MIXED, resets=(ConnectionReset(tick=18, sender=2, receiver=1),)
    )
    sim = run_sim(plan)
    tcp = asyncio.run(
        run_over_tcp(
            CONFIG,
            {
                pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"))
                for pid in CONFIG.processes
            },
            tick_duration=0.05,
            fault_plan=plan,
            timeout=60.0,
        )
    )
    assert tcp.unanimous_decision() == "v"
    assert tcp.trace.count("reconnected") >= 1  # the reset really fired
    # Cross-runtime fidelity: same plan, same seed => the socket run
    # pays exactly the simulator's word bill.
    assert tcp.correct_words == sim.correct_words
    publish(
        "fault_tolerance_tcp",
        format_table(
            ["runtime", "decision", "correct words", "reconnects"],
            [
                ["tick simulator", sim.unanimous_decision(), sim.correct_words, "-"],
                [
                    "TCP sockets",
                    tcp.unanimous_decision(),
                    tcp.correct_words,
                    tcp.trace.count("reconnected"),
                ],
            ],
        ),
        plan.describe(),
        "A mid-run connection reset on the busiest edge is absorbed by "
        "reconnect-with-backoff; the TCP run's decisions and word counts "
        "match the tick simulator's exactly under the same FaultPlan seed.",
        scenario={"protocol": "bb", "n": CONFIG.n, "t": CONFIG.t,
                  "plan": plan.describe(),
                  "reset": {"tick": 18, "sender": 2, "receiver": 1}},
        word_bills=[word_bill("tick simulator", sim),
                    word_bill("tcp sockets", tcp)],
    )
