"""Lemma 6: if f < (n-t-1)/2, correct processes never run the fallback.

Sweeps f across the threshold for several n and records fallback
activation — the measured activation boundary must sit exactly at the
lemma's threshold for silent (crash-style) adversaries.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

from benchmarks._harness import publish

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


def fallback_used(n: int, f: int, seed: int = 0) -> bool:
    config = SystemConfig.with_optimal_resilience(n)
    byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
    inputs = {p: "v" for p in config.processes if p not in byzantine}
    result = run_weak_ba(
        config, inputs, VALIDITY, byzantine=byzantine, seed=seed
    )
    assert result.unanimous_decision() == "v"
    return result.fallback_was_used()


def test_lemma6_activation_boundary(benchmark):
    rows = []
    mismatches = []
    for n in (7, 13, 21):
        config = SystemConfig.with_optimal_resilience(n)
        threshold = config.fallback_failure_threshold
        for f in range(0, config.t + 1):
            used = fallback_used(n, f)
            below = f < threshold
            rows.append(
                [n, config.t, f, f"{threshold:.1f}",
                 "yes" if used else "no",
                 "adaptive" if below else "fallback-allowed"]
            )
            if below and used:
                mismatches.append((n, f))
    publish(
        "fallback_threshold",
        format_table(
            ["n", "t", "f", "(n-t-1)/2", "fallback used", "Lemma 6 regime"],
            rows,
        ),
        f"Lemma 6 violations (fallback below threshold): {len(mismatches)} "
        "(expected 0).  Above the threshold activation is permitted and — "
        "for silent adversaries that block the commit quorum — observed.",
    )
    assert not mismatches
    benchmark.pedantic(lambda: fallback_used(7, 1), rounds=3, iterations=1)


def test_silent_adversary_activates_above_threshold(benchmark):
    """Complement: with silent failures the commit quorum becomes
    unreachable exactly when n - f < ceil((n+t+1)/2), so activation is
    not just allowed but forced."""
    rows = []
    for n in (7, 13, 21):
        config = SystemConfig.with_optimal_resilience(n)
        for f in range(0, config.t + 1):
            used = fallback_used(n, f)
            forced = not config.commit_quorum_reachable(f)
            rows.append([n, f, "yes" if used else "no",
                         "yes" if forced else "no"])
            if forced:
                assert used, (n, f)
            if not forced:
                assert not used, (n, f)
    publish(
        "fallback_threshold_forced",
        format_table(["n", "f", "fallback used", "quorum unreachable"], rows),
        "Activation coincides exactly with commit-quorum unreachability "
        "under silent adversaries.",
    )
    benchmark.pedantic(lambda: fallback_used(7, 3), rounds=1, iterations=1)
