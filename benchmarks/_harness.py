"""Shared plumbing for the benchmark suite.

Every ``bench_*.py`` regenerates one of the paper's evaluation
artifacts (DESIGN.md Section 4).  Conventions:

* each bench test **asserts the paper's shape claim** (slopes,
  thresholds, orderings), so ``pytest benchmarks/ --benchmark-only``
  doubles as a reproduction check;
* each bench **writes its table** to ``benchmarks/results/<name>.txt``
  (and prints it, visible with ``-s``) — EXPERIMENTS.md links these;
* the ``benchmark`` fixture times one representative run so
  pytest-benchmark's wall-clock table stays meaningful.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, *sections: str) -> str:
    """Write the bench's report to ``results/<name>.txt`` and return it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n\n".join(sections) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    print(f"\n=== {name} ===\n{body}")
    return body
