"""Shared plumbing for the benchmark suite.

Every ``bench_*.py`` regenerates one of the paper's evaluation
artifacts (DESIGN.md Section 4).  Conventions:

* each bench test **asserts the paper's shape claim** (slopes,
  thresholds, orderings), so ``pytest benchmarks/ --benchmark-only``
  doubles as a reproduction check;
* each bench **writes its table** to ``benchmarks/results/<name>.txt``
  (and prints it, visible with ``-s``) — EXPERIMENTS.md links these;
* every :func:`publish` call also writes a machine-readable
  ``results/<name>.json`` conforming to
  :data:`repro.obs.schema.BENCH_RESULT_SCHEMA` (scenario parameters,
  word bills, wall-clock percentiles, git revision) — CI validates the
  emitted documents with ``repro obs validate``;
* the ``benchmark`` fixture times one representative run so
  pytest-benchmark's wall-clock table stays meaningful.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Callable

from repro.obs.schema import SCHEMA_VERSION, validate_bench_result

RESULTS_DIR = Path(__file__).parent / "results"


def git_rev() -> str | None:
    """HEAD at generation time, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def word_bill(label: str, result) -> dict:
    """One schema-shaped word bill from a Run/AsyncRunResult."""
    return {
        "label": label,
        "n": result.config.n,
        "t": result.config.t,
        "f": result.f,
        "words": result.ledger.correct_words,
        "messages": result.ledger.correct_messages,
        "signatures": result.ledger.signature_count(),
        "fallback": result.fallback_was_used(),
    }


def time_percentiles(fn: Callable[[], object], repeats: int = 5) -> dict:
    """Schema-shaped wall-clock section: run ``fn`` ``repeats`` times.

    With few repeats the percentiles are coarse by construction (p50 is
    the median sample, p90/p99 the max) — good enough to spot order-of-
    magnitude regressions, which is all the JSON trail is for.
    """
    if repeats < 1:
        # The schema requires wall_clock.repeats >= 1; a bench with no
        # timed runs should pass wall_clock=None instead of an empty
        # percentile block (which used to die here with an IndexError).
        raise ValueError(
            "time_percentiles needs repeats >= 1; pass wall_clock=None "
            f"to publish() for an untimed run (got repeats={repeats})"
        )
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()

    def pct(q: float) -> float:
        return samples[min(int(q * len(samples)), len(samples) - 1)]

    return {
        "unit": "seconds",
        "repeats": repeats,
        "percentiles": {"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99)},
    }


def publish(
    name: str,
    *sections: str,
    scenario: dict | None = None,
    word_bills: list[dict] | None = None,
    wall_clock: dict | None = None,
) -> str:
    """Write the bench's report to ``results/<name>.txt`` (and a
    schema-valid ``results/<name>.json``) and return the text body.

    ``scenario`` carries the bench's parameters, ``word_bills`` a list
    of :func:`word_bill` dicts, ``wall_clock`` a
    :func:`time_percentiles` section — all optional, all landing in the
    JSON document verbatim.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n\n".join(sections) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    document = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "git_rev": git_rev(),
        "scenario": scenario or {},
        "word_bills": word_bills or [],
        "wall_clock": wall_clock,
        "sections": list(sections),
    }
    errors = validate_bench_result(document)
    if errors:  # a bench handing in malformed sections is a bug, not data
        raise ValueError(f"bench {name} produced an invalid result: {errors}")
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(document, indent=1))
    print(f"\n=== {name} ===\n{body}")
    return body
