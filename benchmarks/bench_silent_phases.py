"""Section 5.1 / 6.1 claim: the number of non-silent phases is O(f+1).

"After the first non-silent phase by a correct leader, all following
phases with correct leaders are silent.  Thus, the number of non-silent
phases is linear in f."  This bench counts non-silent phases directly
from the trace across failure counts and adversary styles.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import WeakBaTeasingLeader
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

from benchmarks._harness import publish, word_bill

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


def count_non_silent(n, f, behavior_factory, seed=0):
    config = SystemConfig.with_optimal_resilience(n)
    byzantine = {p: behavior_factory(p) for p in range(1, f + 1)}
    inputs = {p: "v" for p in config.processes if p not in byzantine}
    result = run_weak_ba(
        config, inputs, VALIDITY, byzantine=byzantine, seed=seed
    )
    return result, result.trace.count("phase_non_silent")


def test_non_silent_phases_bounded_by_f_plus_one(benchmark):
    n = 17
    config = SystemConfig.with_optimal_resilience(n)
    rows = []
    bills = []
    violations = []
    for f in range(0, config.t + 1):
        for label, factory in (
            ("silent", lambda pid: SilentBehavior()),
            ("teasing", lambda pid: WeakBaTeasingLeader(value="t")),
        ):
            result, non_silent = count_non_silent(n, f, factory)
            bills.append(word_bill(f"weak_ba n={n} f={f} {label}", result))
            rows.append(
                [f, label, non_silent, f + 1,
                 "yes" if result.fallback_was_used() else "no"]
            )
            if not result.fallback_was_used() and non_silent > f + 1:
                violations.append((f, label, non_silent))
    publish(
        "silent_phases",
        format_table(
            ["f", "adversary", "non-silent phases", "bound f+1", "fallback"],
            rows,
        ),
        f"violations of the f+1 bound in adaptive runs: {len(violations)} "
        "(paper Section 6.1: expected 0)",
        scenario={"protocol": "weak-ba", "n": n,
                  "fs": list(range(0, config.t + 1)),
                  "adversaries": ["silent", "teasing"]},
        word_bills=bills,
    )
    assert not violations
    benchmark.pedantic(
        lambda: count_non_silent(9, 2, lambda pid: SilentBehavior()),
        rounds=3,
        iterations=1,
    )


def test_silent_phases_cost_nothing(benchmark):
    """A fully silent phase sends zero words: total phase-part words
    scale with non-silent phases only."""
    n = 17
    result, non_silent = count_non_silent(n, 0, lambda pid: SilentBehavior())
    phase_payloads = {
        "WbaPropose", "WbaVote", "WbaCommitInfo", "WbaCommitCert",
        "WbaDecideShare", "WbaFinalize",
    }
    phase_words = sum(
        w
        for ptype, w in result.ledger.words_by_payload_type().items()
        if ptype in phase_payloads
    )
    publish(
        "silent_phases_cost",
        f"n={n}, f=0: {non_silent} non-silent phase(s), "
        f"{phase_words} phase words over {result.config.n} phases "
        f"(~{phase_words / max(non_silent, 1):.0f} words per non-silent "
        "phase; silent phases are free)",
        scenario={"protocol": "weak-ba", "n": n, "f": 0,
                  "phase_words": phase_words, "non_silent": non_silent},
        word_bills=[word_bill(f"weak_ba n={n} f=0", result)],
    )
    # All phase words are attributable to the single non-silent phase,
    # and that phase is O(n): 5 leader/all exchanges.
    assert non_silent == 1
    assert phase_words <= 6 * n
    benchmark.pedantic(
        lambda: count_non_silent(9, 0, lambda pid: SilentBehavior()),
        rounds=3,
        iterations=1,
    )
