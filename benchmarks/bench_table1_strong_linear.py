"""Table 1, row "Strong BA, O(n) with f=0 (binary)": Algorithm 5.

The paper's headline for Section 7: linear words in the failure-free
case, quadratic otherwise.  This bench regenerates both branches and
the jump between them.
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_strong_ba
from repro.analysis.tables import render_points

from benchmarks._harness import publish

NS = (5, 9, 17, 33)


def test_strong_ba_failure_free_linear(benchmark):
    points = sweep_strong_ba(NS, fs=lambda c: [0])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_strong_ba_linear",
        render_points(points),
        f"log-log slope of words vs n (f=0): {fit.slope:.3f} "
        f"(paper: O(n) -> 1.0), R^2={fit.r_squared:.4f}",
    )
    assert 0.85 < fit.slope < 1.15, f"Alg 5 f=0 must be linear, got {fit.slope}"
    for p in points:
        assert not p.fallback_used
        assert p.decision == 1
    benchmark.pedantic(
        lambda: sweep_strong_ba([9], fs=lambda c: [0]), rounds=3, iterations=1
    )


def test_strong_ba_any_failure_goes_quadratic(benchmark):
    """One failure is enough to leave the fast path: slope jumps to ~2
    and every run uses the fallback."""
    points = sweep_strong_ba(NS, fs=lambda c: [1])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    failure_free = sweep_strong_ba(NS, fs=lambda c: [0])
    publish(
        "table1_strong_ba_degraded",
        render_points(points),
        f"log-log slope of words vs n (f=1): {fit.slope:.3f} "
        "(paper: O(n^2) otherwise -> ~2.0)",
        "\n".join(
            f"n={a.n}: words f=0 {a.words:6d}  vs  f=1 {b.words:6d} "
            f"({b.words / a.words:.1f}x)"
            for a, b in zip(failure_free, points)
        ),
    )
    assert 1.6 < fit.slope < 2.4
    for quiet, noisy in zip(failure_free, points):
        assert noisy.fallback_used
        assert noisy.words > 3 * quiet.words
    benchmark.pedantic(
        lambda: sweep_strong_ba([9], fs=lambda c: [1]), rounds=1, iterations=1
    )
