"""Ablation: why the commit quorum must be ⌈(n+t+1)/2⌉.

Section 6's "first key observation": ``⌈(n+t+1)/2⌉`` signatures give
quorum intersection in a *correct* process, while ``n - t = t + 1``
does not (at ``n = 2t + 1``).  We ablate the quorum and attack both
configurations with an equivocating leader that drives two values
through its phase simultaneously:

* paper quorum -> the attack cannot assemble two commit certificates;
  agreement holds at every seed;
* ablated ``t+1`` quorum -> the attack finalizes both values and
  correct processes decide differently.
"""

from repro.adversary.protocol_attacks import WeakBaEquivocatingLeader
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.errors import AgreementViolation
from repro.runtime.scheduler import Simulation

from benchmarks._harness import publish

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))


def run_attacked(n: int, quorum: int, seed: int = 0):
    """Run weak BA with a quorum override under the equivocating-leader
    attack (leader = p1, everyone else correct with distinct inputs so
    neither attack value is 'the unanimous one')."""
    config = SystemConfig.with_optimal_resilience(n)
    simulation = Simulation(config, seed=seed)
    simulation.add_byzantine(
        1, WeakBaEquivocatingLeader(value_a="evil-A", value_b="evil-B",
                                    quorum=quorum)
    )
    for pid in config.processes:
        if pid == 1:
            continue
        simulation.add_process(
            pid,
            lambda ctx: weak_ba_protocol(
                ctx, "honest", VALIDITY, commit_quorum=quorum
            ),
        )
    return simulation.run()


def test_paper_quorum_resists_equivocating_leader(benchmark):
    config = SystemConfig.with_optimal_resilience(7)
    rows = []
    for seed in range(5):
        result = run_attacked(7, config.commit_quorum, seed)
        decision = result.unanimous_decision()  # must not raise
        rows.append([seed, config.commit_quorum, "agreement", repr(decision)])
    publish(
        "ablation_quorum_paper",
        format_table(["seed", "quorum", "outcome", "decision"], rows),
        f"paper quorum ceil((n+t+1)/2) = {config.commit_quorum}: the "
        "equivocating leader never splits a decision.",
    )
    benchmark.pedantic(
        lambda: run_attacked(7, config.commit_quorum), rounds=3, iterations=1
    )


def test_ablated_t_plus_one_quorum_breaks_agreement(benchmark):
    config = SystemConfig.with_optimal_resilience(7)
    ablated = config.small_quorum  # t + 1 = n - t: no correct intersection
    rows = []
    split_observed = False
    for seed in range(5):
        result = run_attacked(7, ablated, seed)
        try:
            decision = result.unanimous_decision()
            rows.append([seed, ablated, "agreement", repr(decision)])
        except AgreementViolation as violation:
            split_observed = True
            rows.append([seed, ablated, "SPLIT", str(violation)[:60]])
    publish(
        "ablation_quorum_tplus1",
        format_table(["seed", "quorum", "outcome", "detail"], rows),
        f"ablated quorum t+1 = {ablated}: the same attack produces "
        "conflicting finalize certificates and correct processes decide "
        "differently — the intersection property is load-bearing.",
    )
    assert split_observed, "t+1 quorums must be attackable at n = 2t+1"
    benchmark.pedantic(
        lambda: run_attacked(7, ablated), rounds=3, iterations=1
    )


def test_full_quorum_sacrifices_adaptivity(benchmark):
    """The other direction: quorum n is safe but a single silent
    process blocks every certificate, forcing the quadratic fallback —
    the paper's choice is the unique sweet spot."""
    from repro.adversary.behaviors import SilentBehavior

    config = SystemConfig.with_optimal_resilience(7)
    validity = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))

    def run_with_quorum(quorum):
        simulation = Simulation(config, seed=0)
        simulation.add_byzantine(3, SilentBehavior())
        for pid in config.processes:
            if pid == 3:
                continue
            simulation.add_process(
                pid,
                lambda ctx: weak_ba_protocol(
                    ctx, "v", VALIDITY, commit_quorum=quorum
                ),
            )
        return simulation.run()

    paper = run_with_quorum(config.commit_quorum)
    full = run_with_quorum(config.n)
    publish(
        "ablation_quorum_full",
        format_table(
            ["quorum", "fallback used", "words"],
            [
                [config.commit_quorum, paper.fallback_was_used(), paper.correct_words],
                [config.n, full.fallback_was_used(), full.correct_words],
            ],
        ),
        "f=1 silent: the paper quorum stays adaptive; quorum n falls "
        "back and pays the quadratic cost.",
    )
    assert paper.unanimous_decision() == "v"
    assert full.unanimous_decision() == "v"
    assert not paper.fallback_was_used()
    assert full.fallback_was_used()
    assert full.correct_words > 3 * paper.correct_words
    benchmark.pedantic(
        lambda: run_with_quorum(config.commit_quorum), rounds=3, iterations=1
    )
