"""Figure 1: the relation between the paper's solutions.

The figure shows the component nesting: Byzantine Broadcast uses weak
BA, which uses the quadratic fallback (Momose–Ren); the fast strong BA
uses the fallback directly.  This bench regenerates the diagram from
*measured traces*: every word a correct process sends is attributed to
its protocol-scope path, so the nesting and each layer's share of the
cost fall out of the ledger.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba

from benchmarks._harness import publish


def composition_diagram(by_scope: dict[str, int]) -> str:
    total = sum(by_scope.values()) or 1
    lines = []
    for scope in sorted(by_scope):
        depth = scope.count("/")
        name = scope.rsplit("/", 1)[-1]
        share = 100 * by_scope[scope] / total
        lines.append(
            f"{'    ' * depth}└─ {name:<12} {by_scope[scope]:6d} words "
            f"({share:5.1f}%)"
        )
    return "\n".join(lines)


def test_bb_uses_weak_ba_uses_fallback(benchmark):
    config = SystemConfig.with_optimal_resilience(9)

    adaptive = run_byzantine_broadcast(config, sender=0, value="v")
    byzantine = {p: SilentBehavior() for p in (1, 3, 5, 7)}
    degraded = run_byzantine_broadcast(
        config, sender=0, value="v", byzantine=byzantine
    )

    adaptive_scopes = adaptive.ledger.words_by_scope()
    degraded_scopes = degraded.ledger.words_by_scope()
    publish(
        "figure1_composition_bb",
        "Adaptive run (f=0):\n" + composition_diagram(adaptive_scopes),
        "Degraded run (f=t):\n" + composition_diagram(degraded_scopes),
        "Figure 1 reproduced: BB -> weak BA -> fallback(A_fallback); the "
        "fallback layer appears only in the degraded run and then "
        "dominates the cost.",
    )
    # Figure 1's arrows, as measured:
    assert set(adaptive_scopes) == {"bb", "bb/weak_ba"}
    assert "bb/weak_ba/fallback" in degraded_scopes
    fallback_words = sum(
        w for s, w in degraded_scopes.items() if "fallback" in s
    )
    assert fallback_words > degraded.correct_words / 2
    benchmark.pedantic(
        lambda: run_byzantine_broadcast(config, sender=0, value="v"),
        rounds=3,
        iterations=1,
    )


def test_strong_ba_uses_fallback_directly(benchmark):
    config = SystemConfig.with_optimal_resilience(9)
    quiet = run_strong_ba(config, {p: 1 for p in config.processes})
    degraded = run_strong_ba(
        config,
        {p: 1 for p in config.processes if p != 0},
        byzantine={0: SilentBehavior()},
    )
    quiet_scopes = quiet.ledger.words_by_scope()
    degraded_scopes = degraded.ledger.words_by_scope()
    publish(
        "figure1_composition_strong_ba",
        "Failure-free run:\n" + composition_diagram(quiet_scopes),
        "One-failure run:\n" + composition_diagram(degraded_scopes),
    )
    assert set(quiet_scopes) == {"strong_ba"}
    assert "strong_ba/fallback" in degraded_scopes
    # Strong BA never routes through weak BA (Figure 1's separate box).
    assert not any("weak_ba" in s for s in degraded_scopes)
    benchmark.pedantic(
        lambda: run_strong_ba(config, {p: 1 for p in config.processes}),
        rounds=3,
        iterations=1,
    )
