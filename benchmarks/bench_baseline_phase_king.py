"""The three corners of the paper's landscape, measured side by side.

* **Phase King** — unauthenticated, ``n >= 4t+1``, ``O(n^3)`` words;
* **Dolev–Strong** — authenticated, any ``t < n``, ``O(n^2)`` messages
  but cubic words in the worst case;
* **this paper** — PKI + threshold signatures, ``n = 2t+1``,
  ``O(n(f+1))`` words.

For an apples-to-apples run we compare *failure-free binary agreement*
at matched process counts (Phase King gets its required extra
resilience margin within the same n by using a smaller t).
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.strong_ba import run_strong_ba
from repro.fallback.dolev_strong import run_dolev_strong
from repro.fallback.phase_king import run_phase_king

from benchmarks._harness import publish

NS = (5, 9, 17, 33)


def test_three_way_baseline_comparison(benchmark):
    rows = []
    series = {"paper": [], "dolev_strong": [], "phase_king": []}
    for n in NS:
        paper_config = SystemConfig.with_optimal_resilience(n)
        paper = run_strong_ba(
            paper_config, {p: 1 for p in paper_config.processes}
        )
        assert paper.unanimous_decision() == 1

        ds = run_dolev_strong(paper_config, sender=0, value=1)
        assert ds.unanimous_decision() == 1

        pk_config = SystemConfig(n=n, t=(n - 1) // 4)
        pk = run_phase_king(pk_config, {p: 1 for p in pk_config.processes})
        assert pk.unanimous_decision() == 1

        rows.append(
            [
                n,
                f"{paper.correct_words} (t={paper_config.t})",
                f"{ds.correct_words} (t={paper_config.t})",
                f"{pk.correct_words} (t={pk_config.t})",
            ]
        )
        series["paper"].append((n, paper.correct_words))
        series["dolev_strong"].append((n, ds.correct_words))
        series["phase_king"].append((n, pk.correct_words))

    slopes = {
        name: fit_slope_vs(points, lambda p: p[0], lambda p: p[1]).slope
        for name, points in series.items()
    }
    publish(
        "baseline_phase_king",
        format_table(
            ["n", "paper Alg.5 words", "Dolev-Strong words",
             "Phase King words"],
            rows,
        ),
        "failure-free word-growth slopes vs n: "
        + ", ".join(f"{k}: n^{v:.2f}" for k, v in sorted(slopes.items()))
        + "\n(paper ~linear; both classical baselines super-linear — and "
        "Phase King also needs double the replication for the same t)",
    )
    assert slopes["paper"] < 1.3
    assert slopes["dolev_strong"] > slopes["paper"] + 0.5
    assert slopes["phase_king"] > slopes["paper"] + 0.5
    for _, paper_w, ds_w, pk_w in rows[2:]:
        paper_words = int(paper_w.split()[0])
        assert paper_words < int(ds_w.split()[0])
        assert paper_words < int(pk_w.split()[0])
    benchmark.pedantic(
        lambda: run_phase_king(
            SystemConfig(n=9, t=2), {p: 1 for p in range(9)}
        ),
        rounds=3,
        iterations=1,
    )
