"""Application-level benchmark: SMR throughput on adaptive BB.

The paper's protocols exist to make systems like this cheap.  Measured
here: commands committed per simulated round for the sequential,
batched, and pipelined replication modes, failure-free and with a
crashed replica.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.tables import format_table
from repro.apps.clients import ClientWorkload, run_batched_smr
from repro.apps.pipelined import run_pipelined_smr
from repro.apps.smr import run_smr
from repro.config import SystemConfig

from benchmarks._harness import publish

N = 5
COMMANDS = 10
SLOTS = 10


def _workloads():
    return [
        ClientWorkload(
            client=f"c{i}",
            ops=(("set", f"k{i}", i),),
            replicas=(i % N, (i + 1) % N),
        )
        for i in range(COMMANDS)
    ]


def test_pipelining_multiplies_throughput(benchmark):
    config = SystemConfig.with_optimal_resilience(N)
    workloads = _workloads()

    simple = run_smr(
        config,
        {pid: [("set", f"k{pid}", pid)] for pid in config.processes},
        num_slots=SLOTS,
    )
    batched = run_batched_smr(config, workloads, num_slots=SLOTS, batch_size=2)
    pipelined = run_pipelined_smr(
        config, workloads, num_slots=SLOTS, window=5, batch_size=2
    )

    rows = []
    for label, result, commits in (
        ("one-command slots", simple, len(simple.unanimous_decision().log)),
        ("batched", batched, len(batched.unanimous_decision().log)),
        ("batched + pipelined (w=5)", pipelined,
         len(pipelined.unanimous_decision().log)),
    ):
        rows.append(
            [
                label,
                commits,
                result.ticks,
                f"{commits / result.ticks:.3f}",
                result.correct_words,
            ]
        )
    publish(
        "smr_throughput",
        format_table(
            ["mode", "commits", "rounds", "commits/round", "words"], rows
        ),
        "Pipelining divides latency by ~window at identical word cost "
        "per slot; the protocols underneath are untouched.",
    )
    assert (
        dict(batched.unanimous_decision().state)
        == dict(pipelined.unanimous_decision().state)
    )
    throughput = {row[0]: float(row[3]) for row in rows}
    assert throughput["batched + pipelined (w=5)"] > 3 * throughput["batched"]
    benchmark.pedantic(
        lambda: run_pipelined_smr(
            config, workloads, num_slots=5, window=5, batch_size=2
        ),
        rounds=3,
        iterations=1,
    )


def test_pipelined_smr_with_failures(benchmark):
    config = SystemConfig.with_optimal_resilience(N)
    workloads = _workloads()
    byzantine = {2: SilentBehavior()}
    result = run_pipelined_smr(
        config,
        workloads,
        num_slots=SLOTS,
        window=5,
        batch_size=2,
        byzantine=byzantine,
    )
    outcome = result.unanimous_decision()
    publish(
        "smr_throughput_degraded",
        f"crashed replica 2: {len(outcome.log)} of {COMMANDS} commands "
        f"committed in {result.ticks} rounds, {result.correct_words} words "
        "(fan-out submission routed around the dead replica).",
    )
    assert len(outcome.log) == COMMANDS
    benchmark.pedantic(
        lambda: run_pipelined_smr(
            config, workloads, num_slots=5, window=5, byzantine={
                2: SilentBehavior()
            },
        ),
        rounds=1,
        iterations=1,
    )
