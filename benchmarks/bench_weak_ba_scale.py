"""Theorem 2 at three-digit scale: the weak BA word curve past n=100.

The Table 1 benches stop at n=33 to stay CI-sized.  With the cached
Lagrange/verification layer and the slotted scheduler the simulator
clears n=101 in well under a second per run, so this bench records the
first three-digit points of the paper's headline curve:

* failure-free runs stay **linear** (``O(n)`` words — Lemma 8's fast
  path, slope ~1 on the log-log fit);
* silent-faulty runs without fallback respect the **adaptive** bound
  ``O(n * (f + 1))``;
* a forced fallback at n=101 shows the quadratic worst case the
  adaptive bound is escaping.
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_weak_ba
from repro.analysis.tables import format_table

from benchmarks._harness import publish, time_percentiles, word_bill

NS = (25, 51, 75, 101)
ADAPTIVE_FS = (0, 1, 12, 25)


def _bill(point):
    """A schema-shaped word bill straight from a SweepPoint."""
    return {
        "label": f"weak_ba n={point.n} f={point.f}",
        "n": point.n,
        "t": point.t,
        "f": point.f,
        "words": point.words,
        "messages": point.messages,
        "signatures": point.signatures,
        "fallback": point.fallback_used,
    }


def test_weak_ba_word_curve_past_n100(benchmark):
    """Failure-free words grow ~linearly through n=101; the adaptive
    bound holds for every non-fallback faulty point at n=101."""
    curve = sweep_weak_ba(NS, fs=lambda config: [0])
    assert all(not point.fallback_used for point in curve)
    fit = fit_slope_vs(curve, lambda p: p.n, lambda p: p.words)
    # Linear fast path: far from quadratic even at three digits.
    assert fit.slope < 1.5, fit

    adaptive = sweep_weak_ba([101], fs=lambda config: list(ADAPTIVE_FS))
    assert all(not point.fallback_used for point in adaptive)
    for point in adaptive:
        assert point.words <= 6 * point.n * (point.f + 1), point

    (worst,) = sweep_weak_ba([101], fs=lambda config: [config.t])
    assert worst.fallback_used
    # The quadratic fallback dwarfs every adaptive point.
    assert worst.words > 10 * max(point.words for point in adaptive)

    rows = [
        [p.n, p.f, p.words, p.messages, p.signatures,
         "yes" if p.fallback_used else "no", f"{p.words_per_nf:.2f}"]
        for p in (*curve, *adaptive, worst)
    ]
    publish(
        "weak_ba_scale",
        format_table(
            ["n", "f", "words", "messages", "signatures", "fallback",
             "words/(n(f+1))"],
            rows,
        ),
        f"failure-free words ~ n^{fit.slope:.2f} (R^2={fit.r_squared:.3f})"
        f" across n in {list(NS)}",
        scenario={
            "protocol": "weak-ba",
            "ns": list(NS),
            "adaptive_fs_at_n101": list(ADAPTIVE_FS),
            "worst_case": "f=t=50 silent (forced fallback)",
        },
        word_bills=[_bill(p) for p in (*curve, *adaptive, worst)],
        wall_clock=time_percentiles(
            lambda: sweep_weak_ba([101], fs=lambda config: [0]), repeats=3
        ),
    )
    benchmark.pedantic(
        lambda: sweep_weak_ba([101], fs=lambda config: [0]),
        rounds=3,
        iterations=1,
    )
