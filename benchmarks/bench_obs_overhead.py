"""Observability overhead: disabled instrumentation must be ~free.

The contract (DESIGN.md Section 10): ``observer=None`` is the
uninstrumented baseline; a :class:`~repro.obs.NullObserver` is
*disabled* instrumentation, which every runtime collapses to the
``None`` fast path at construction (``active_or_none``), so the two
configurations execute the same hot-path code.  This bench measures all
three operating points on the same workload and asserts the disabled
cost stays within 5% of baseline.

Methodology: the three variants are timed in interleaved rounds (so a
load spike hits all of them equally) and compared on their *minimum*
times — the standard low-noise estimator for "how fast can this code
path go".
"""

import time

from repro.analysis.tables import format_table
from repro.adversary.behaviors import SilentBehavior
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.obs import NullObserver, Observer

from benchmarks._harness import publish, time_percentiles

CONFIG = SystemConfig.with_optimal_resilience(9)
VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))
ROUNDS = 9
DISABLED_BUDGET = 1.05  # disabled instrumentation within 5% of baseline


def _run(observer_factory):
    byzantine = {1: SilentBehavior(), 3: SilentBehavior()}
    inputs = {p: "v" for p in CONFIG.processes if p not in byzantine}
    params = RunParameters(seed=0, observer=observer_factory())
    return run_weak_ba(
        CONFIG, inputs, VALIDITY, byzantine=byzantine, seed=0, params=params
    )


def _time_once(observer_factory) -> float:
    start = time.perf_counter()
    _run(observer_factory)
    return time.perf_counter() - start


def test_disabled_observer_costs_nothing(benchmark):
    variants = {
        "baseline (observer=None)": lambda: None,
        "disabled (NullObserver)": NullObserver,
        "enabled (Observer)": Observer,
    }
    samples = {label: [] for label in variants}
    _run(lambda: None)  # warm caches before timing anything
    for _ in range(ROUNDS):  # interleaved: noise hits every variant alike
        for label, factory in variants.items():
            samples[label].append(_time_once(factory))
    best = {label: min(times) for label, times in samples.items()}
    base = best["baseline (observer=None)"]
    rows = [
        [label, f"{best[label] * 1e3:.2f}", f"{best[label] / base:.3f}x"]
        for label in variants
    ]
    disabled_ratio = best["disabled (NullObserver)"] / base
    enabled_ratio = best["enabled (Observer)"] / base
    publish(
        "obs_overhead",
        format_table(["variant", "best of 9 (ms)", "vs baseline"], rows),
        f"disabled instrumentation costs {disabled_ratio:.3f}x the "
        f"uninstrumented baseline (budget {DISABLED_BUDGET}x); full "
        f"recording costs {enabled_ratio:.3f}x.",
        scenario={
            "protocol": "weak-ba",
            "n": CONFIG.n,
            "f": 2,
            "rounds": ROUNDS,
            "estimator": "min",
            "disabled_ratio": disabled_ratio,
            "enabled_ratio": enabled_ratio,
            "budget": DISABLED_BUDGET,
        },
        wall_clock=time_percentiles(lambda: _run(lambda: None), repeats=3),
    )
    assert disabled_ratio <= DISABLED_BUDGET, (
        f"disabled observer cost {disabled_ratio:.3f}x baseline "
        f"(> {DISABLED_BUDGET}x): the NullObserver fast-path collapse "
        "is not collapsing"
    )
    # Full recording is allowed to cost something, but staying within
    # 2x guards against accidentally quadratic instrumentation.
    assert enabled_ratio <= 2.0
    benchmark.pedantic(lambda: _run(Observer), rounds=3, iterations=1)
