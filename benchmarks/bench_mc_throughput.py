"""Model-checker throughput: schedules/second and pruning leverage.

Not a paper claim — infrastructure health for the ``repro.mc``
subsystem: how fast the explorer executes schedules and how much of the
bounded space fingerprint pruning removes.  If pruning leverage
regresses, exhaustive proofs that take seconds today quietly become
minutes (the full n=4 perm_cap=6 space is ~154k runs; perm_cap=2/3
keep CI-sized spaces at 213/1.1k runs).
"""

import time

from benchmarks._harness import publish
from repro.mc.explore import explore_exhaustive, explore_random
from repro.mc.scenario import make_scenario


def _scenario(perm_cap=2):
    return make_scenario("weak-ba", n=4, t=1, max_ticks=12, perm_cap=perm_cap)


def test_exhaustive_schedule_rate(benchmark):
    """Schedules/sec of the DFS over the perm_cap=2 proof space."""
    result = benchmark(lambda: explore_exhaustive(_scenario(), max_runs=10_000))
    assert result.complete and result.ok


def test_random_walk_rate(benchmark):
    """Schedules/sec of seeded random walks (no pruning, every run
    terminal) — the mode for spaces too large to exhaust."""
    result = benchmark(
        lambda: explore_random(_scenario(perm_cap=6), runs=50, seed=0)
    )
    assert result.ok
    assert result.stats.terminal == 50


def test_pruning_leverage_report(benchmark):
    """Publish the explored/pruned table: pruning must remove most of
    the space, and disabling it must not change the verdict."""

    def measure(perm_cap, prune):
        start = time.perf_counter()
        result = explore_exhaustive(
            _scenario(perm_cap), max_runs=50_000, prune=prune
        )
        elapsed = time.perf_counter() - start
        return result, elapsed

    rows = ["perm_cap  prune     runs  terminal   pruned   states  sched/s"]
    verdicts = set()
    for perm_cap in (2, 3):
        for prune in ("behavior", "history", None):
            result, elapsed = measure(perm_cap, prune)
            stats = result.stats
            rate = stats.runs / elapsed if elapsed else float("inf")
            rows.append(
                f"{perm_cap:>8}  {str(prune):<8} {stats.runs:>5}"
                f"  {stats.terminal:>8}  {stats.pruned:>7}"
                f"  {stats.distinct_states:>7}  {rate:>7.0f}"
            )
            verdicts.add((result.complete, result.ok))

    # Same theorem whichever fingerprint mode (or none) we search with.
    assert verdicts == {(True, True)}

    # Pruning leverage: "behavior" mode removes most of the cap-3 space.
    pruned_result, _ = measure(3, "behavior")
    stats = pruned_result.stats
    assert stats.pruned > stats.terminal

    publish(
        "mc_throughput",
        "model-checker throughput (weak-ba, n=4, t=1, <=12 ticks)",
        "\n".join(rows),
    )
    benchmark(lambda: explore_exhaustive(_scenario(), max_runs=10_000))
