"""Model-checker throughput: schedules/second and pruning leverage.

Not a paper claim — infrastructure health for the ``repro.mc``
subsystem: how fast the explorer executes schedules and how much of the
bounded space fingerprint pruning removes.  If pruning leverage
regresses, exhaustive proofs that take seconds today quietly become
minutes (the full n=4 perm_cap=6 space is ~154k runs; perm_cap=2/3
keep CI-sized spaces at CI size).

``perf_floor.json`` pins the pre-optimization schedule rate; the report
test fails if the explorer drops back below it (see also
``benchmarks/perf_smoke.py``, the standalone CI leg).
"""

import json
import time
from pathlib import Path

from benchmarks._harness import publish, time_percentiles
from repro.mc.explore import explore_exhaustive, explore_random
from repro.mc.scenario import make_scenario

PERF_FLOOR = json.loads(
    (Path(__file__).parent / "perf_floor.json").read_text()
)


def _scenario(perm_cap=2):
    return make_scenario("weak-ba", n=4, t=1, max_ticks=12, perm_cap=perm_cap)


def _floor_rate(repeats=3):
    """Best-of-N CPU-time schedule rate on the floor workload.

    CPU time (not wall clock) and best-of-N both exist to keep the
    measurement honest on noisy shared runners: we are asking "can this
    code still go that fast", not "was the box busy".
    """
    best = 0.0
    for _ in range(repeats):
        start = time.process_time()
        result = explore_exhaustive(_scenario(), max_runs=50_000)
        elapsed = time.process_time() - start
        assert result.complete and result.ok
        best = max(best, result.stats.runs / elapsed if elapsed else 0.0)
    return best


def test_exhaustive_schedule_rate(benchmark):
    """Schedules/sec of the DFS over the perm_cap=2 proof space."""
    result = benchmark(lambda: explore_exhaustive(_scenario(), max_runs=10_000))
    assert result.complete and result.ok


def test_random_walk_rate(benchmark):
    """Schedules/sec of seeded random walks (no pruning, every run
    terminal) — the mode for spaces too large to exhaust."""
    result = benchmark(
        lambda: explore_random(_scenario(perm_cap=6), runs=50, seed=0)
    )
    assert result.ok
    assert result.stats.terminal == 50


def test_schedule_rate_above_checked_in_floor():
    """The explorer must stay above the pre-optimization baseline."""
    rate = _floor_rate()
    assert rate >= PERF_FLOOR["mc_sched_per_sec"], (
        f"{rate:.0f} sched/s is below the checked-in floor of "
        f"{PERF_FLOOR['mc_sched_per_sec']:.0f} ({PERF_FLOOR['workload']})"
    )


def test_pruning_leverage_report(benchmark):
    """Publish the explored/pruned table: pruning must remove most of
    the space, and disabling it must not change the verdict."""

    def measure(perm_cap, prune):
        start = time.perf_counter()
        result = explore_exhaustive(
            _scenario(perm_cap), max_runs=50_000, prune=prune
        )
        elapsed = time.perf_counter() - start
        return result, elapsed

    rows = ["perm_cap  prune     runs  terminal   pruned   states  sched/s"]
    verdicts = set()
    for perm_cap in (2, 3):
        for prune in ("behavior", "history", None):
            result, elapsed = measure(perm_cap, prune)
            stats = result.stats
            rate = stats.runs / elapsed if elapsed else float("inf")
            rows.append(
                f"{perm_cap:>8}  {str(prune):<8} {stats.runs:>5}"
                f"  {stats.terminal:>8}  {stats.pruned:>7}"
                f"  {stats.distinct_states:>7}  {rate:>7.0f}"
            )
            verdicts.add((result.complete, result.ok))

    # Same theorem whichever fingerprint mode (or none) we search with.
    assert verdicts == {(True, True)}

    # Pruning leverage: "behavior" mode removes most of the cap-3 space.
    pruned_result, _ = measure(3, "behavior")
    stats = pruned_result.stats
    assert stats.pruned > stats.terminal

    floor_rate = _floor_rate()
    publish(
        "mc_throughput",
        "model-checker throughput (weak-ba, n=4, t=1, <=12 ticks)",
        "\n".join(rows),
        f"floor workload best-of-3 CPU rate: {floor_rate:.0f} sched/s"
        f" (checked-in floor {PERF_FLOOR['mc_sched_per_sec']:.0f})",
        scenario={
            "scenario": "weak-ba n=4 t=1 max_ticks=12",
            "perm_caps": [2, 3],
            "prune_modes": ["behavior", "history", "none"],
            "floor_sched_per_sec": PERF_FLOOR["mc_sched_per_sec"],
            "floor_workload": PERF_FLOOR["workload"],
        },
        wall_clock=time_percentiles(
            lambda: explore_exhaustive(_scenario(), max_runs=10_000),
            repeats=3,
        ),
    )
    benchmark(lambda: explore_exhaustive(_scenario(), max_runs=10_000))
