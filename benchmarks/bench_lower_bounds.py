"""Table 1, lower-bound columns: Ω(nf) words and Ω(n^2) signatures.

Dolev–Reischuk [9]: any BB needs Ω(nt) *signatures* even in failure-
free runs, and Ω(nf) words.  The paper's protocols meet the word bound
adaptively while packing the mandatory signatures into threshold
certificates.  This bench verifies our measurements respect both sides:

* transmitted *signatures* (counting each certificate as its quorum's
  worth) grow ~quadratically in n even at f = 0 — the Ω(nt) cost is
  paid, it is just compressed;
* transmitted *words* stay ~linear at f = 0 — the compression is real;
* words never drop below n - 1 ≈ Ω(n(f+1)) at f = 0 (every correct
  process must learn the value).
"""

from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_byzantine_broadcast
from repro.analysis.tables import render_points

from benchmarks._harness import publish

NS = (5, 9, 17, 33)


def test_signatures_quadratic_but_words_linear(benchmark):
    points = sweep_byzantine_broadcast(NS, fs=lambda c: [0])
    sig_fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.signatures)
    word_fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "lower_bounds",
        render_points(
            points, extra={"sigs/nt": lambda p: p.signatures / (p.n * p.t)}
        ),
        f"signature slope vs n (f=0): {sig_fit.slope:.3f}  "
        "(Dolev-Reischuk: Omega(nt) signatures -> ~2.0)\n"
        f"word slope vs n (f=0):      {word_fit.slope:.3f}  "
        "(threshold compression -> ~1.0)",
    )
    assert sig_fit.slope > 1.5, "the Omega(nt) signature cost must be paid"
    assert word_fit.slope < 1.3, "yet words must stay linear"
    for p in points:
        assert p.signatures >= p.n * p.t / 4, "Omega(nt) signatures"
        assert p.words >= p.n - 1, "Omega(n(f+1)) words at f=0"
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([9], fs=lambda c: [0]),
        rounds=3,
        iterations=1,
    )


def test_words_respect_omega_nf(benchmark):
    """At every measured (n, f), the adaptive upper bound sits above
    the Ω(nf) lower bound — the gap is the constant the paper buys."""
    points = sweep_byzantine_broadcast(
        (5, 9, 13), fs=lambda c: range(c.t + 1)
    )
    violations = [p for p in points if p.f > 0 and p.words < p.n * p.f / 4]
    publish(
        "lower_bounds_nf",
        render_points(points, extra={"w/(nf)": lambda p: (
            p.words / (p.n * p.f) if p.f else float("nan")
        )}),
        f"points below Omega(nf)/4: {len(violations)} (expected 0)",
    )
    assert not violations
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([5], fs=lambda c: [1]),
        rounds=3,
        iterations=1,
    )
