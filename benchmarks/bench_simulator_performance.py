"""Simulator throughput benchmarks (pytest-benchmark's home turf).

Not a paper claim — infrastructure health: how fast the deterministic
runtime executes protocol rounds, so regressions in the scheduler or
pool don't silently make the real benchmarks unrunnable at scale.

The report test publishes a ``simulator_performance`` artifact through
the shared harness so the runtime's throughput has the same JSON trail
as the paper benches.
"""

import time

from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.scheduler import Simulation

from benchmarks._harness import publish, time_percentiles, word_bill


def all_to_all_protocol(rounds):
    def factory(ctx):
        def protocol(ctx):
            for _ in range(rounds):
                ctx.broadcast(("ping", ctx.now))
                yield
            return ctx.pid

        return protocol(ctx)

    return factory


def run_all_to_all(n, rounds):
    config = SystemConfig.with_optimal_resilience(n)
    simulation = Simulation(config)
    for pid in config.processes:
        simulation.add_process(pid, all_to_all_protocol(rounds))
    return simulation.run()


def test_scheduler_throughput_all_to_all(benchmark):
    """~n^2 envelopes per round through the scheduler."""
    result = benchmark(lambda: run_all_to_all(21, 10))
    assert result.correct_words == 21 * 20 * 10


def test_bb_end_to_end_rate(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark(
        lambda: run_byzantine_broadcast(config, sender=0, value="v")
    )
    assert result.unanimous_decision() == "v"


def test_strong_ba_end_to_end_rate(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark(
        lambda: run_strong_ba(config, {p: 1 for p in config.processes})
    )
    assert result.unanimous_decision() == 1


def test_fallback_crypto_heavy_rate(benchmark):
    """The fallback is the crypto-heavy path (thousands of partial
    verifications) — track it separately."""
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark.pedantic(
        lambda: run_fallback_ba(config, {p: "v" for p in config.processes}),
        rounds=3,
        iterations=1,
    )
    assert result.unanimous_decision() == "v"


def test_simulator_performance_report(benchmark):
    """Publish one throughput row per runtime workload."""
    config13 = SystemConfig.with_optimal_resilience(13)
    workloads = [
        ("all-to-all n=21 r=10", lambda: run_all_to_all(21, 10)),
        ("bb n=13 f=0",
         lambda: run_byzantine_broadcast(config13, sender=0, value="v")),
        ("strong_ba n=13 f=0",
         lambda: run_strong_ba(config13, {p: 1 for p in config13.processes})),
        ("fallback_ba n=13 f=0",
         lambda: run_fallback_ba(
             config13, {p: "v" for p in config13.processes})),
    ]
    rows = ["workload               ticks   words  envelopes/s   runs/s"]
    bills = []
    for label, run in workloads:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        bills.append(word_bill(label, result))
        envelopes = result.ledger.correct_messages
        rows.append(
            f"{label:<21} {result.ticks:>6}  {result.correct_words:>6}"
            f"  {envelopes / elapsed:>11.0f}  {1 / elapsed:>7.2f}"
        )
    publish(
        "simulator_performance",
        "\n".join(rows),
        scenario={
            "workloads": [label for label, _ in workloads],
            "note": "single representative run per row; see "
            "pytest-benchmark output for distributions",
        },
        word_bills=bills,
        wall_clock=time_percentiles(lambda: run_all_to_all(21, 10), repeats=3),
    )
    benchmark.pedantic(
        lambda: run_all_to_all(21, 10), rounds=3, iterations=1
    )
