"""Simulator throughput benchmarks (pytest-benchmark's home turf).

Not a paper claim — infrastructure health: how fast the deterministic
runtime executes protocol rounds, so regressions in the scheduler or
pool don't silently make the real benchmarks unrunnable at scale.
"""

from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.scheduler import Simulation


def all_to_all_protocol(rounds):
    def factory(ctx):
        def protocol(ctx):
            for _ in range(rounds):
                ctx.broadcast(("ping", ctx.now))
                yield
            return ctx.pid

        return protocol(ctx)

    return factory


def run_all_to_all(n, rounds):
    config = SystemConfig.with_optimal_resilience(n)
    simulation = Simulation(config)
    for pid in config.processes:
        simulation.add_process(pid, all_to_all_protocol(rounds))
    return simulation.run()


def test_scheduler_throughput_all_to_all(benchmark):
    """~n^2 envelopes per round through the scheduler."""
    result = benchmark(lambda: run_all_to_all(21, 10))
    assert result.correct_words == 21 * 20 * 10


def test_bb_end_to_end_rate(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark(
        lambda: run_byzantine_broadcast(config, sender=0, value="v")
    )
    assert result.unanimous_decision() == "v"


def test_strong_ba_end_to_end_rate(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark(
        lambda: run_strong_ba(config, {p: 1 for p in config.processes})
    )
    assert result.unanimous_decision() == 1


def test_fallback_crypto_heavy_rate(benchmark):
    """The fallback is the crypto-heavy path (thousands of partial
    verifications) — track it separately."""
    config = SystemConfig.with_optimal_resilience(13)
    result = benchmark.pedantic(
        lambda: run_fallback_ba(config, {p: "v" for p in config.processes}),
        rounds=3,
        iterations=1,
    )
    assert result.unanimous_decision() == "v"
