"""Table 1, row "Byzantine Broadcast": upper bound O(n(f+1)).

Regenerates the row by measuring adaptive BB's words over an (n, f)
grid and fitting growth exponents:

* failure-free words grow ~linearly in n (slope ≈ 1, not 2);
* at fixed n, words grow with f but stay bounded by c·n(f+1) while
  f is below the fallback threshold;
* at f = t the quadratic fallback bound takes over, still O(n^2).
"""

from repro.adversary.protocol_attacks import BbVettingHelpSpammer
from repro.adversary.strategies import StaticStrategy
from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_byzantine_broadcast
from repro.analysis.tables import render_points

from benchmarks._harness import publish

NS = (5, 9, 13, 17, 21)


def test_bb_failure_free_is_linear(benchmark):
    points = sweep_byzantine_broadcast(NS, fs=lambda c: [0])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_bb_failure_free",
        render_points(points),
        f"log-log slope of words vs n (f=0): {fit.slope:.3f} "
        f"(paper: O(n(f+1)) -> 1.0), R^2={fit.r_squared:.4f}",
    )
    assert 0.8 < fit.slope < 1.3, f"BB f=0 should be ~linear, got {fit.slope}"
    for p in points:
        assert p.decision == "payload"
        assert not p.fallback_used
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([9], fs=lambda c: [0]),
        rounds=3,
        iterations=1,
    )


def test_bb_words_grow_linearly_in_f(benchmark):
    """Against help-spamming leaders (the tight adversary), words at
    fixed n grow ~linearly with f inside the adaptive regime
    (f < (n-t-1)/2), and switch to the O(n^2) fallback regime above it
    — both regimes respecting the O(n(f+1)) ⊆ O(n^2) bound."""
    n = 21
    points = sweep_byzantine_broadcast(
        [n],
        fs=lambda c: range(0, c.t + 1, 2),
        strategy=StaticStrategy(
            behavior_factory=lambda pid: BbVettingHelpSpammer(),
            avoid=frozenset({0}),
        ),
    )
    adaptive = [p for p in points if not p.fallback_used]
    base = adaptive[0].words
    marginal = [
        (p.words - base) / (p.n * p.f) for p in adaptive if p.f > 0
    ]
    publish(
        "table1_bb_adaptivity",
        render_points(points),
        "marginal cost per failure, (words(f)-words(0))/(n*f): "
        + ", ".join(f"f={p.f}: {m:.3f}" for p, m in zip(adaptive[1:], marginal))
        + "\n(paper: O(n(f+1)) -> flat marginal cost in the adaptive regime; "
        "fallback regime above f=(n-t-1)/2 is O(n^2))",
    )
    # Adaptive regime: strictly growing, flat per-failure marginal cost.
    assert len(adaptive) >= 3
    words = [p.words for p in adaptive]
    assert words == sorted(words) and words[0] < words[-1]
    assert max(marginal) < 2 * min(marginal)
    # Fallback regime exists at f=t and stays within ~O(n^2).
    worst = [p for p in points if p.fallback_used]
    assert worst and all(p.words < 25 * n * n for p in worst)
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast(
            [9],
            fs=lambda c: [2],
            strategy=StaticStrategy(
                behavior_factory=lambda pid: BbVettingHelpSpammer(),
                avoid=frozenset({0}),
            ),
        ),
        rounds=3,
        iterations=1,
    )


def test_bb_worst_case_is_quadratic(benchmark):
    """f = t silent: the fallback engages and the total stays O(n^2)."""
    points = sweep_byzantine_broadcast(NS, fs=lambda c: [c.t])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_bb_worst_case",
        render_points(points),
        f"log-log slope of words vs n (f=t): {fit.slope:.3f} "
        "(paper: O(n^2) worst case -> ~2.0)",
    )
    assert 1.6 < fit.slope < 2.4, f"BB f=t should be ~quadratic, got {fit.slope}"
    for p in points:
        assert p.fallback_used
    benchmark.pedantic(
        lambda: sweep_byzantine_broadcast([9], fs=lambda c: [c.t]),
        rounds=1,
        iterations=1,
    )
