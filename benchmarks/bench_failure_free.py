"""Section 7.1 / Lemma 8: the failure-free fast path of Algorithm 5.

"If all processes are correct ... there are 4 all-to-leader and
leader-to-all rounds, with a total of O(n) words."  This bench verifies
the exact round structure and per-round word budget of the fast path,
and that the *other* protocols' failure-free runs are also their
cheapest (the "practically common runs" motivation).
"""

from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.weak_ba import run_weak_ba
from repro.core.validity import ExternalValidity

from benchmarks._harness import publish, time_percentiles, word_bill


def test_algorithm5_fast_path_structure(benchmark):
    rows = []
    bills = []
    for n in (5, 9, 17, 33):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_strong_ba(config, {p: p % 2 for p in config.processes})
        bills.append(word_bill(f"strong_ba n={n} f=0", result))
        by_type = result.ledger.words_by_payload_type()
        rows.append(
            [
                n,
                by_type.get("SbaInput", 0),
                by_type.get("SbaPropose", 0),
                by_type.get("SbaDecideShare", 0),
                by_type.get("SbaDecideCert", 0),
                result.correct_words,
                result.ticks,
            ]
        )
        # Exactly the 4 leader rounds, each <= n words, nothing else.
        assert set(by_type) == {
            "SbaInput", "SbaPropose", "SbaDecideShare", "SbaDecideCert"
        }
        assert all(words <= n for words in by_type.values())
        assert not result.fallback_was_used()
    publish(
        "failure_free_alg5",
        format_table(
            ["n", "inputs", "propose", "decide-shares", "decide-cert",
             "total words", "ticks"],
            rows,
        ),
        "Lemma 8 reproduced: 4 rounds, <= 4(n-1) words, no fallback.",
        scenario={"protocol": "strong-ba", "ns": [5, 9, 17, 33], "f": 0,
                  "inputs": "alternating bits"},
        word_bills=bills,
        wall_clock=time_percentiles(
            lambda: run_strong_ba(
                SystemConfig.with_optimal_resilience(9),
                {p: 1 for p in range(9)},
            ),
            repeats=3,
        ),
    )
    benchmark.pedantic(
        lambda: run_strong_ba(
            SystemConfig.with_optimal_resilience(9),
            {p: 1 for p in range(9)},
        ),
        rounds=3,
        iterations=1,
    )


def test_failure_free_is_cheapest_run_for_every_protocol(benchmark):
    """The 'common case' claim: for each protocol, f=0 is the cheapest
    configuration measured anywhere in this suite."""
    from repro.adversary.behaviors import SilentBehavior

    config = SystemConfig.with_optimal_resilience(9)
    validity = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))
    rows = []
    bills = []
    for name, quiet, degraded in (
        (
            "bb",
            lambda: run_byzantine_broadcast(config, sender=0, value="v"),
            lambda: run_byzantine_broadcast(
                config, sender=0, value="v",
                byzantine={p: SilentBehavior() for p in (1, 3, 5, 7)},
            ),
        ),
        (
            "weak_ba",
            lambda: run_weak_ba(
                config, {p: "v" for p in config.processes}, validity
            ),
            lambda: run_weak_ba(
                config,
                {p: "v" for p in config.processes if p not in (1, 3, 5, 7)},
                validity,
                byzantine={p: SilentBehavior() for p in (1, 3, 5, 7)},
            ),
        ),
        (
            "strong_ba",
            lambda: run_strong_ba(config, {p: 1 for p in config.processes}),
            lambda: run_strong_ba(
                config,
                {p: 1 for p in config.processes if p != 0},
                byzantine={0: SilentBehavior()},
            ),
        ),
    ):
        quiet_result = quiet()
        degraded_result = degraded()
        quiet_words = quiet_result.correct_words
        degraded_words = degraded_result.correct_words
        bills.append(word_bill(f"{name} f=0", quiet_result))
        bills.append(word_bill(f"{name} f=t", degraded_result))
        rows.append([name, quiet_words, degraded_words,
                     f"{degraded_words / quiet_words:.1f}x"])
        assert quiet_words < degraded_words
    publish(
        "failure_free_cheapest",
        format_table(["protocol", "words f=0", "words f=t", "ratio"], rows),
        scenario={"n": 9, "protocols": ["bb", "weak_ba", "strong_ba"],
                  "comparison": "f=0 vs f=t silent adversary"},
        word_bills=bills,
    )
    benchmark.pedantic(
        lambda: run_strong_ba(config, {p: 1 for p in config.processes}),
        rounds=3,
        iterations=1,
    )
