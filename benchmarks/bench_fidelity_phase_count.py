"""Fidelity experiment: Algorithm 3's ``t+1`` vs the prose's ``n`` phases.

DESIGN.md note 1: the paper's pseudocode loops ``j = 1..t+1`` while the
surrounding text and Lemma 6's proof speak of ``n`` phases ("every
correct process has a chance to invoke its phase").  Both variants are
implemented; this bench measures what the choice actually costs:

* both variants are safe and live under every adversary tried here;
* the ``t+1`` variant is *cheaper in ticks* (fewer phases to sit
  through) and equal in words when a correct leader appears early;
* with all of ``p_1..p_t`` Byzantine-silent, the ``t+1`` variant has
  exactly one correct leader (``p_{t+1}``) — still enough (one correct
  leader decides everyone, and the help round covers stragglers),
  which is presumably why the authors wrote ``t+1``;
* the ``n``-phase variant is the one whose silent-phase accounting
  matches Lemma 6's proof verbatim, so it is the default.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.tables import format_table
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

from benchmarks._harness import publish

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


def run_variant(config, num_phases, byzantine, seed=0):
    inputs = {p: "v" for p in config.processes if p not in byzantine}
    return run_weak_ba(
        config,
        inputs,
        VALIDITY,
        byzantine=byzantine,
        seed=seed,
        params=RunParameters(num_phases=num_phases),
    )


def test_phase_count_variants_compared(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    scenarios = [
        ("failure-free", {}),
        ("f=2 silent", {p: SilentBehavior() for p in (1, 2)}),
        (
            "first t leaders silent",
            {p: SilentBehavior() for p in range(1, config.t + 1)},
        ),
    ]
    rows = []
    for label, byzantine in scenarios:
        for phases, name in ((config.t + 1, "t+1"), (config.n, "n")):
            result = run_variant(config, phases, dict(byzantine))
            decision = result.unanimous_decision()
            rows.append(
                [
                    label,
                    name,
                    repr(decision),
                    result.correct_words,
                    result.ticks,
                    "yes" if result.fallback_was_used() else "no",
                ]
            )
            assert decision == "v"
    publish(
        "fidelity_phase_count",
        format_table(
            ["scenario", "phases", "decision", "words", "ticks", "fallback"],
            rows,
        ),
        "Both readings of Algorithm 3's loop bound are safe and live; "
        "t+1 saves ticks, n matches Lemma 6's text.  This repository "
        "defaults to n (DESIGN.md fidelity note 1).",
    )
    # The t+1 variant is never slower than the n variant in ticks.
    by_scenario = {}
    for label, name, _, words, ticks, _ in rows:
        by_scenario.setdefault(label, {})[name] = ticks
    for label, ticks in by_scenario.items():
        assert ticks["t+1"] <= ticks["n"], label
    benchmark.pedantic(
        lambda: run_variant(
            SystemConfig.with_optimal_resilience(9), 5, {}
        ),
        rounds=3,
        iterations=1,
    )
