"""Table 1, row "Weak BA": upper bound O(n(f+1)) multi-valued.

Measures Algorithm 3's words over (n, f): linear in n when failure
free, growing ~linearly in f against teasing leaders inside the
adaptive regime, quadratic once the fallback threshold is crossed.
"""

from repro.adversary.protocol_attacks import WeakBaTeasingLeader
from repro.adversary.strategies import StaticStrategy
from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import sweep_weak_ba
from repro.analysis.tables import render_points

from benchmarks._harness import publish

NS = (5, 9, 13, 17, 21)


def test_weak_ba_failure_free_is_linear(benchmark):
    points = sweep_weak_ba(NS, fs=lambda c: [0])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_weak_ba_failure_free",
        render_points(points),
        f"log-log slope of words vs n (f=0): {fit.slope:.3f} "
        f"(paper: O(n(f+1)) -> 1.0), R^2={fit.r_squared:.4f}",
    )
    assert 0.8 < fit.slope < 1.3
    for p in points:
        assert p.decision == "proposal"
        assert not p.fallback_used
        assert p.non_silent_phases == 1
    benchmark.pedantic(
        lambda: sweep_weak_ba([9], fs=lambda c: [0]), rounds=3, iterations=1
    )


def test_weak_ba_adaptive_in_f(benchmark):
    """Teasing Byzantine leaders make every Byzantine-led phase cost
    O(n) honest words: the marginal cost per failure stays flat."""
    n = 21
    points = sweep_weak_ba(
        [n],
        fs=lambda c: range(0, 5),
        strategy=StaticStrategy(
            behavior_factory=lambda pid: WeakBaTeasingLeader(value="tease"),
            avoid=frozenset({0}),
        ),
    )
    adaptive = [p for p in points if not p.fallback_used]
    base = adaptive[0].words
    marginal = [(p.words - base) / (p.n * p.f) for p in adaptive if p.f > 0]
    publish(
        "table1_weak_ba_adaptivity",
        render_points(points),
        "marginal cost per failure (words(f)-words(0))/(n*f): "
        + ", ".join(f"f={p.f}: {m:.3f}" for p, m in zip(adaptive[1:], marginal)),
    )
    assert len(adaptive) >= 4
    words = [p.words for p in adaptive]
    assert words == sorted(words) and words[0] < words[-1]
    assert max(marginal) < 2.5 * min(marginal)
    benchmark.pedantic(
        lambda: sweep_weak_ba(
            [9],
            fs=lambda c: [1],
            strategy=StaticStrategy(
                behavior_factory=lambda pid: WeakBaTeasingLeader(value="t"),
            ),
        ),
        rounds=3,
        iterations=1,
    )


def test_weak_ba_worst_case_is_quadratic(benchmark):
    points = sweep_weak_ba(NS, fs=lambda c: [c.t])
    fit = fit_slope_vs(points, lambda p: p.n, lambda p: p.words)
    publish(
        "table1_weak_ba_worst_case",
        render_points(points),
        f"log-log slope of words vs n (f=t): {fit.slope:.3f} "
        "(paper: O(n^2) worst case -> ~2.0)",
    )
    assert 1.6 < fit.slope < 2.4
    for p in points:
        assert p.fallback_used
    benchmark.pedantic(
        lambda: sweep_weak_ba([9], fs=lambda c: [c.t]), rounds=1, iterations=1
    )
