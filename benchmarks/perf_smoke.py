"""CI perf smoke: fail if explorer throughput drops below the floor.

Standalone (no pytest) so the CI leg is one command::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Measures best-of-3 CPU-time schedule rate on the floor workload from
``perf_floor.json`` and exits nonzero when it lands below the checked-in
pre-optimization baseline.  CPU time + best-of-N keep the check honest
on busy shared runners: it asks "can this code still go that fast", not
"was the box idle".
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.mc.explore import explore_exhaustive
from repro.mc.scenario import make_scenario

FLOOR_FILE = Path(__file__).parent / "perf_floor.json"


def measure(repeats: int = 3) -> float:
    scenario = make_scenario("weak-ba", n=4, t=1, max_ticks=12, perm_cap=2)
    best = 0.0
    for _ in range(repeats):
        start = time.process_time()
        result = explore_exhaustive(scenario, max_runs=50_000)
        elapsed = time.process_time() - start
        if not (result.complete and result.ok):
            print("perf smoke: explorer verdict changed — failing", file=sys.stderr)
            raise SystemExit(2)
        best = max(best, result.stats.runs / elapsed if elapsed else 0.0)
    return best


def main() -> int:
    floor = json.loads(FLOOR_FILE.read_text())
    rate = measure()
    target = floor["mc_sched_per_sec"]
    verdict = "ok" if rate >= target else "BELOW FLOOR"
    print(
        f"perf smoke: {rate:.0f} sched/s vs floor {target:.0f} — {verdict}\n"
        f"  workload: {floor['workload']}"
    )
    return 0 if rate >= target else 1


if __name__ == "__main__":
    raise SystemExit(main())
