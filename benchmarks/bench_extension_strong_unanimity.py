"""Extension experiment: strong-unanimity BA via weak BA (Section 3).

The paper leaves "fully adaptive strong BA" open but remarks that the
signed-inputs predicate makes unique validity coincide with strong
unanimity.  This bench measures the resulting protocol
(`repro.core.adaptive_strong_ba`): adaptive O(n(f+1)) words in
unanimous runs — i.e. *whenever strong unanimity actually binds* — and
quadratic only in non-unanimous runs.  Algorithm 5 (linear but binary
and only failure-free-fast) is the in-paper comparison.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.fitting import fit_slope_vs
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.adaptive_strong_ba import run_adaptive_strong_ba
from repro.core.strong_ba import run_strong_ba
from repro.core.values import BOTTOM

from benchmarks._harness import publish

NS = (5, 9, 13, 17)


def test_unanimous_runs_scale_linearly(benchmark):
    points = []
    for n in NS:
        config = SystemConfig.with_optimal_resilience(n)
        result = run_adaptive_strong_ba(
            config, {p: "V" for p in config.processes}
        )
        assert result.unanimous_decision() == "V"
        assert not result.fallback_was_used()
        points.append((n, result.correct_words))
    fit = fit_slope_vs(points, lambda p: p[0], lambda p: p[1])
    publish(
        "extension_strong_unanimity_linear",
        format_table(["n", "words (unanimous, f=0)"], points),
        f"slope vs n: {fit.slope:.2f} (adaptive bound -> ~1.0)",
    )
    assert 0.8 < fit.slope < 1.3
    benchmark.pedantic(
        lambda: run_adaptive_strong_ba(
            SystemConfig.with_optimal_resilience(9),
            {p: "V" for p in range(9)},
        ),
        rounds=3,
        iterations=1,
    )


def test_adaptive_in_f_and_quadratic_when_divided(benchmark):
    config = SystemConfig.with_optimal_resilience(13)
    rows = []
    # Unanimous with growing silent failures: stays adaptive below the
    # Lemma 6 threshold.
    for f in (0, 1, 2):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: "V" for p in config.processes if p not in byzantine}
        result = run_adaptive_strong_ba(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "V"
        rows.append([f"unanimous, f={f}", result.correct_words,
                     "yes" if result.fallback_was_used() else "no"])
        assert not result.fallback_was_used()
    # Fully divided inputs: no certificate, quadratic path, ⊥.
    divided = run_adaptive_strong_ba(
        config, {p: f"v{p}" for p in config.processes}
    )
    assert divided.unanimous_decision() == BOTTOM
    rows.append(["all-distinct inputs", divided.correct_words,
                 "yes" if divided.fallback_was_used() else "no"])

    # In-paper comparison: Algorithm 5 on the same unanimous workload.
    alg5 = run_strong_ba(config, {p: 1 for p in config.processes})
    rows.append(["Algorithm 5 (binary, f=0)", alg5.correct_words, "no"])

    publish(
        "extension_strong_unanimity_regimes",
        format_table(["scenario", "words", "fallback"], rows),
        "The extension pays ~linear words exactly when strong unanimity "
        "binds (unanimous inputs, any f below the threshold) and "
        "degrades to the quadratic regime only when inputs are divided "
        "— where Definition 2 permits ⊥.  Algorithm 5 stays cheaper in "
        "its own niche (binary, failure-free).",
    )
    assert rows[0][1] < divided.correct_words / 5
    assert alg5.correct_words <= rows[0][1]
    benchmark.pedantic(
        lambda: run_adaptive_strong_ba(
            SystemConfig.with_optimal_resilience(9),
            {p: f"v{p}" for p in range(9)},
        ),
        rounds=1,
        iterations=1,
    )
