"""Recovery subsystem cost model: WAL overhead and replay latency.

The crash-recovery tentpole's bargain is: pay a WAL tax on every run so
that a crashed process can rejoin *without* a protocol-visible resync
(the rejoin replays the WAL locally; the cluster sends nothing extra,
so the word bill stays exactly the adaptive ``O((t+1)n)`` the paper
bills).  This bench prices both sides of the bargain on weak BA:

* **WAL overhead** — same deployment, same seed, memory-only vs each
  fsync policy (``never``/``batch``/``always``).  The decision and the
  word bill must be *identical* (durability is observability, not
  protocol); only wall-clock and disk bytes may move.
* **Replay latency** — a scheduled crash/restart recovers from the WAL
  mid-run; the in-run replay time comes from the recovery stats and the
  offline ``repro recover replay`` path is timed separately.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.faults import FaultPlan, ProcessCrash
from repro.recovery import RecoveryManager, replay_wal

from benchmarks._harness import publish, time_percentiles, word_bill

CONFIG = SystemConfig.with_optimal_resilience(7)
SEED = 7
VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))
CRASH = ProcessCrash(pid=2, at_tick=3, restart_tick=6)
ROUNDS = 5


def _run(recovery=None, fault_plan=None):
    params = RunParameters(
        seed=SEED, fault_plan=fault_plan, recovery=recovery, num_phases=2
    )
    return run_weak_ba(
        CONFIG,
        {p: "v" for p in CONFIG.processes},
        VALIDITY,
        seed=SEED,
        params=params,
    )


def _timed_variant(make_recovery, fault_plan=None):
    """Best-of-ROUNDS wall clock plus the last run's artifacts."""
    best, result, recovery, wal_bytes = float("inf"), None, None, 0
    for _ in range(ROUNDS):
        wal_dir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
        try:
            recovery = make_recovery(wal_dir)
            start = time.perf_counter()
            result = _run(recovery, fault_plan)
            elapsed = time.perf_counter() - start
            if recovery is not None:
                recovery.close()
                wal_bytes = recovery.wal_bytes()
            best = min(best, elapsed)
        finally:
            if fault_plan is None:
                shutil.rmtree(wal_dir, ignore_errors=True)
            else:  # keep the last crash run's WALs for offline replay
                if _timed_variant.keep is not None:
                    shutil.rmtree(_timed_variant.keep, ignore_errors=True)
                _timed_variant.keep = wal_dir
    return best, result, recovery, wal_bytes


_timed_variant.keep = None


def test_wal_overhead_and_replay_latency(benchmark):
    base_s, baseline, _, _ = _timed_variant(lambda d: None)

    rows, bills, overheads = [], [word_bill("memory-only", baseline)], {}
    rows.append(["memory-only", f"{base_s * 1e3:.2f}", "1.000x", "-"])
    for fsync in ("never", "batch", "always"):
        run_s, result, _, wal_bytes = _timed_variant(
            lambda d, f=fsync: RecoveryManager(d, fsync=f)
        )
        # Durability must be protocol-invisible: same decision, same bill.
        assert result.unanimous_decision() == baseline.unanimous_decision()
        assert (
            result.ledger.correct_words == baseline.ledger.correct_words
        ), f"fsync={fsync} changed the word bill"
        overheads[fsync] = run_s / base_s
        bills.append(word_bill(f"wal-{fsync}", result))
        rows.append(
            [f"wal-{fsync}", f"{run_s * 1e3:.2f}",
             f"{overheads[fsync]:.3f}x", str(wal_bytes)]
        )

    # Crash/restart: mid-run replay from the WAL, then offline replay.
    plan = FaultPlan(crashes=(CRASH,), seed=SEED)
    crash_s, crashed, recovery, wal_bytes = _timed_variant(
        lambda d: RecoveryManager(d), fault_plan=plan
    )
    assert crashed.unanimous_decision() == baseline.unanimous_decision()
    assert crashed.recovered == frozenset({CRASH.pid})
    assert recovery.stats.restarts == 1
    in_run_replay_s = recovery.stats.replay_seconds

    wal_dir = _timed_variant.keep
    offline_start = time.perf_counter()
    offline = replay_wal(wal_dir / f"p{CRASH.pid}")
    offline_replay_s = time.perf_counter() - offline_start
    assert offline.decided
    assert repr(offline.decision) == repr(crashed.decisions[CRASH.pid])
    shutil.rmtree(wal_dir, ignore_errors=True)
    _timed_variant.keep = None

    bills.append(word_bill("crash-restart", crashed))
    rows.append(
        ["crash-restart", f"{crash_s * 1e3:.2f}",
         f"{crash_s / base_s:.3f}x", str(wal_bytes)]
    )

    # Replay is a local rebuild, not a protocol exchange: it must be
    # cheap relative to the run it recovers (order-of-magnitude guard).
    assert in_run_replay_s < base_s
    assert offline_replay_s < 10 * base_s

    publish(
        "recovery",
        format_table(
            ["variant", f"best of {ROUNDS} (ms)", "vs memory-only", "wal bytes"],
            rows,
        ),
        (
            f"in-run replay of {recovery.stats.replayed_ticks} tick(s) took "
            f"{in_run_replay_s * 1e3:.2f} ms; offline replay of p{CRASH.pid}'s "
            f"WAL ({offline.ticks_replayed} ticks) took "
            f"{offline_replay_s * 1e3:.2f} ms and reproduced the decision."
        ),
        scenario={
            "protocol": "weak-ba",
            "n": CONFIG.n,
            "t": CONFIG.t,
            "seed": SEED,
            "rounds": ROUNDS,
            "estimator": "min",
            "crash": {
                "pid": CRASH.pid,
                "at_tick": CRASH.at_tick,
                "restart_tick": CRASH.restart_tick,
            },
            "fsync_overhead": overheads,
            "in_run_replay_seconds": in_run_replay_s,
            "offline_replay_seconds": offline_replay_s,
            "wal_bytes": wal_bytes,
        },
        word_bills=bills,
        wall_clock=time_percentiles(lambda: _run(), repeats=ROUNDS),
    )
    benchmark.pedantic(lambda: _run(), rounds=3, iterations=1)
