"""The "practically common runs" experiment (the paper's motivation).

Sections 1/4: systems rarely exhibit worst-case crash patterns, so a
protocol whose cost adapts to the *actual* failures wins in
expectation.  We model each process crashing independently with
probability ``p`` at a random early tick, run Monte-Carlo batches, and
compare the adaptive BB's expected word bill against the always-
quadratic fallback run on the same workload.
"""

from repro.analysis.montecarlo import expected_cost_curve
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.fallback.recursive_ba import fallback_ba

from benchmarks._harness import publish

N = 13
TRIALS = 30
PROBABILITIES = (0.0, 0.05, 0.15, 0.3)


def test_adaptive_expected_cost_beats_quadratic(benchmark):
    config = SystemConfig.with_optimal_resilience(N)

    adaptive = expected_cost_curve(
        config,
        lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
        probabilities=PROBABILITIES,
        trials=TRIALS,
        protected=frozenset({0}),  # keep the sender correct
    )
    quadratic = expected_cost_curve(
        config,
        lambda pid: lambda ctx: fallback_ba(ctx, "v", round_ticks=1),
        probabilities=PROBABILITIES,
        trials=TRIALS,
    )

    headers = [
        "series", "trials", "mean", "median", "p95", "max",
        "fallback rate", "splits",
    ]
    rows = []
    for dist in adaptive:
        rows.append(["adaptive " + dist.label, *dist.row()[1:]])
    for dist in quadratic:
        rows.append(["quadratic " + dist.label, *dist.row()[1:]])
    savings = [
        q.mean / a.mean for a, q in zip(adaptive, quadratic)
    ]
    publish(
        "expected_cost",
        format_table(headers, rows),
        "expected savings (quadratic mean / adaptive mean) per p: "
        + ", ".join(
            f"p={p:g}: {s:.1f}x" for p, s in zip(PROBABILITIES, savings)
        )
        + "\n(the paper's motivation quantified: common runs are cheap, "
        "and the adaptive protocol's expected cost degrades gracefully "
        "as failures become likelier)",
    )

    # No safety violations anywhere.
    assert all(d.disagreements == 0 for d in adaptive + quadratic)
    # Adaptive wins in expectation at every p, hugely at p=0.
    assert all(s > 1 for s in savings)
    assert savings[0] > 5
    # Adaptive expected cost grows with p; the quadratic baseline's
    # does not improve (silence only trims constant factors).
    means = [d.mean for d in adaptive]
    assert means[0] < means[-1]
    benchmark.pedantic(
        lambda: expected_cost_curve(
            config,
            lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
            probabilities=(0.1,),
            trials=5,
            protected=frozenset({0}),
        ),
        rounds=1,
        iterations=1,
    )
