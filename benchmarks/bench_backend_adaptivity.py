"""Backend differential: word-vs-f curves for both strong-BA stacks.

The conformance suite proves both backends satisfy the same
agreement/validity/termination contract; this bench publishes the
*quantitative* difference the papers claim.  At fixed n, Algorithm 5
(cohen) pays its quadratic fallback for any f >= 1, while the civit
certification stack stays on its O(n(f+1)) line until the shared
weak-BA fallback threshold (n-t-1)/2 — the measured curves land in
``results/backend_adaptivity.json`` for the CI schema gate.
"""

import repro.protocols as protocols
from repro.adversary.behaviors import SilentBehavior
from repro.config import SystemConfig

from benchmarks._harness import publish, time_percentiles, word_bill

N = 9


def _run(backend, config, f, *, seed=0):
    byzantine = {config.n - 1 - i: SilentBehavior() for i in range(f)}
    inputs = {p: 1 for p in config.processes if p not in byzantine}
    return backend.run_strong_ba(
        config, inputs, byzantine=byzantine, seed=seed
    )


def test_backend_adaptivity_curves(benchmark):
    config = SystemConfig.with_optimal_resilience(N)
    curves = {}
    bills = []
    for backend in protocols.all_backends():
        curve = {}
        for f in range(config.t + 1):
            result = _run(backend, config, f)
            assert result.unanimous_decision() == 1
            budget = backend.strong_ba_word_budget(config, f)
            assert result.correct_words <= budget
            curve[f] = result.correct_words
            bills.append(word_bill(f"{backend.name} f={f}", result))
        curves[backend.name] = curve

    cohen, civit = curves["cohen"], curves["civit"]
    lines = [
        f"strong BA words vs f at n={N} (t={config.t}), silent faults:",
        "  f   " + "".join(f"{name:>10}" for name in sorted(curves)),
    ]
    for f in range(config.t + 1):
        lines.append(
            f"  {f}   "
            + "".join(f"{curves[name][f]:>10}" for name in sorted(curves))
        )
    threshold = config.fallback_failure_threshold
    lines.append(
        f"cohen jumps quadratic at f=1 (x{cohen[1] / cohen[0]:.1f} over "
        f"f=0); civit stays linear until f >= {threshold:.1f} "
        f"(f=1 is x{civit[1] / civit[0]:.2f} over f=0)"
    )
    publish(
        "backend_adaptivity",
        "\n".join(lines),
        scenario={
            "n": N,
            "t": config.t,
            "backends": sorted(curves),
            "fallback_threshold": threshold,
        },
        word_bills=bills,
        wall_clock=time_percentiles(
            lambda: _run(protocols.get_backend("civit"), config, 1),
            repeats=3,
        ),
    )

    # The headline shape claims, asserted on the published numbers.
    assert cohen[1] > 5 * cohen[0]  # quadratic jump at the first fault
    assert civit[1] < 2 * civit[0]  # still on the linear envelope
    assert civit[1] < cohen[1] / 5  # the differential itself
    # Below the shared fallback threshold civit's curve stays far
    # under cohen's single-fault bill (above it both may go quadratic).
    for f in range(config.t + 1):
        if f < threshold:
            assert civit[f] < cohen[1] / 5, (f, civit[f], cohen[1])
    benchmark.pedantic(
        lambda: _run(protocols.get_backend("civit"), config, 1),
        rounds=3,
        iterations=1,
    )


def test_backend_adaptivity_is_seed_stable():
    """The published curves are schedule-independent facts, not lucky
    seeds: both backends bill identically across seeds at every f."""
    config = SystemConfig.with_optimal_resilience(N)
    for backend in protocols.all_backends():
        for f in (0, 1, config.t):
            words = {
                _run(backend, config, f, seed=s).correct_words
                for s in range(3)
            }
            assert len(words) == 1, (backend.name, f, words)
